//! Machine-readable benchmark collector: times the scheduler hot path and
//! the parallel experiment driver with `std::time::Instant` and writes a
//! `BENCH_*.json` trajectory artifact (suite, metric, value, host
//! metadata) so successive commits can be compared without parsing
//! criterion's HTML output.
//!
//! ```text
//! cargo run --release -p tracon-bench --bin collect -- --quick --out BENCH_1.json
//! ```
//!
//! The micro suites mirror `benches/schedulers.rs` (batch scheduling of
//! 32 tasks on 16 machines; MIBS_8 across cluster sizes) plus warm
//! score-lookup probes (the legacy dense-table path and the machine-
//! class-adjusted `class_score` path); the kernel suite times the
//! event-kernel hot paths
//! (end-to-end `kernel_events_per_sec`, raw `queue_push_pop_ns` for both
//! queue backends, `mix_head_search_ns`); the macro suite times a reduced
//! Fig 9 dynamic sweep single-threaded versus multi-threaded and reports
//! the speedup.

use serde_json::json;
use std::collections::{HashMap, VecDeque};
use std::time::Instant;
use tracon_core::characteristics::N_JOINT;
use tracon_core::{
    par, AppModelSet, AppProfile, AppRegistry, Characteristics, ClusterState, Fifo,
    InterferenceModel, MachineClass, Mibs, Mios, Mix, ModelKind, Objective, Predictor, Scheduler,
    ScoringPolicy, Task,
};
use tracon_dcsim::engine::queue_roundtrip_checksum;
use tracon_dcsim::experiments::registry::{find, TestbedCache, REGISTRY};
use tracon_dcsim::experiments::{fig9, sweep, ExperimentConfig};
use tracon_dcsim::{
    poisson_trace, QueueBackend, SchedulerKind, Simulation, Testbed, TestbedConfig, WorkloadMix,
};
use tracon_serve::wal::WalRecord;
use tracon_serve::{
    daemon, route_app, Client, Metrics, NetConfig, Reply, Request, SchedKind, ServeConfig, Service,
    Wal,
};

/// A cheap synthetic model (product interference) so the collector
/// measures scheduler logic rather than model evaluation — the same
/// world as `benches/schedulers.rs`.
struct ProductModel;
impl InterferenceModel for ProductModel {
    fn predict(&self, f: &[f64; N_JOINT]) -> f64 {
        100.0 + 0.01 * f[0] * f[4] + 50.0 * f[2] * f[6]
    }
    fn kind(&self) -> ModelKind {
        ModelKind::Nonlinear
    }
    fn n_terms(&self) -> usize {
        2
    }
}

fn synthetic_world(n_apps: usize) -> (Predictor, HashMap<String, Characteristics>) {
    let mut predictor = Predictor::new();
    let mut chars = HashMap::new();
    for i in 0..n_apps {
        let name = format!("app{i}");
        let c = Characteristics::new(
            30.0 * (i as f64 + 1.0),
            5.0 * i as f64,
            0.1 + 0.1 * i as f64,
            0.01 * (i as f64 + 1.0),
        );
        predictor.add_app(
            AppProfile {
                name: name.clone(),
                solo: c,
                solo_runtime: 100.0,
                solo_iops: c.total_rps(),
            },
            AppModelSet {
                runtime: Box::new(ProductModel),
                iops: Box::new(ProductModel),
            },
        );
        chars.insert(name, c);
    }
    (predictor, chars)
}

fn batch(n: usize, n_apps: usize, seed: u64) -> VecDeque<Task> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let registry = AppRegistry::from_names((0..n_apps).map(|i| format!("app{i}")));
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let name = format!("app{}", rng.gen_range(0..n_apps));
            Task::new(i as u64, registry.expect_id(&name))
        })
        .collect()
}

/// Times `iters` runs of `run`, each on a fresh state from `setup`
/// (setup cost excluded). Returns mean nanoseconds per iteration.
fn bench<S, T>(warmup: usize, iters: usize, mut setup: impl FnMut() -> S, mut run: T) -> f64
where
    T: FnMut(S),
{
    for _ in 0..warmup {
        let s = setup();
        run(s);
    }
    let mut total_ns = 0u128;
    for _ in 0..iters {
        let s = setup();
        let t0 = Instant::now();
        run(s);
        total_ns += t0.elapsed().as_nanos();
    }
    total_ns as f64 / iters as f64
}

fn scheduler_by_name(name: &str, window: usize) -> Box<dyn Scheduler> {
    match name {
        "FIFO" => Box::new(Fifo),
        "MIOS" => Box::new(Mios),
        "MIBS" => Box::new(Mibs::new(window)),
        "MIX" => Box::new(Mix::new(window)),
        _ => unreachable!("unknown scheduler {name}"),
    }
}

fn micro_suite(quick: bool, results: &mut Vec<serde_json::Value>) {
    let (predictor, chars) = synthetic_world(8);
    let (warmup, iters) = if quick { (3, 20) } else { (10, 200) };

    // Batch scheduling: 32 tasks, 16 machines — one schedule() call.
    for name in ["FIFO", "MIOS", "MIBS", "MIX"] {
        let ns = bench(
            warmup,
            iters,
            || {
                (
                    scheduler_by_name(name, 32),
                    batch(32, 8, 5),
                    ClusterState::new(16, 2, chars.clone()),
                    ScoringPolicy::new(&predictor, Objective::MinRuntime),
                )
            },
            |(mut s, mut q, mut cl, sc)| {
                s.schedule(&mut q, &mut cl, &sc);
            },
        );
        results.push(json!({
            "suite": "schedulers",
            "name": format!("{name}_batch32_machines16"),
            "metric": "schedule_call",
            "unit": "ns",
            "value": ns,
            "iters": iters,
        }));
        eprintln!("schedulers/{name}: {:.1} us per call", ns / 1e3);
    }

    // MIBS_8 across cluster sizes: cost must stay flat (class index).
    let sizes: &[usize] = if quick { &[16, 128] } else { &[16, 128, 1024] };
    for &machines in sizes {
        let ns = bench(
            warmup,
            iters,
            || {
                (
                    Mibs::new(8),
                    batch(8, 8, 9),
                    ClusterState::new(machines, 2, chars.clone()),
                    ScoringPolicy::new(&predictor, Objective::MinRuntime),
                )
            },
            |(mut s, mut q, mut cl, sc)| {
                s.schedule(&mut q, &mut cl, &sc);
            },
        );
        results.push(json!({
            "suite": "cluster_scaling",
            "name": format!("MIBS8_batch8_machines{machines}"),
            "metric": "schedule_call",
            "unit": "ns",
            "value": ns,
            "iters": iters,
        }));
        eprintln!("cluster_scaling/{machines}: {:.1} us per call", ns / 1e3);
    }

    // Warm score lookup: after the first pass every (app, class) score is
    // a dense-table load — this probes the per-call hot-path cost.
    let scoring = ScoringPolicy::new(&predictor, Objective::MinRuntime);
    let mut cluster = ClusterState::new(8, 2, chars.clone());
    let apps: Vec<_> = cluster.registry().ids().collect();
    // One resident per machine creates eight single-neighbour classes.
    for (m, &id) in apps.iter().enumerate() {
        cluster.place(
            tracon_core::VmRef {
                machine: m,
                slot: 0,
            },
            tracon_core::Resident {
                task_id: m as u64,
                app: id,
            },
        );
    }
    let classes = cluster.free_classes();
    // Warm fill.
    for &app in &apps {
        for c in &classes {
            scoring.score(app, c.key, &c.background);
        }
    }
    let lookups = apps.len() * classes.len();
    let rounds = if quick { 2_000 } else { 50_000 };
    let t0 = Instant::now();
    let mut acc = 0.0f64;
    for _ in 0..rounds {
        for &app in &apps {
            for c in &classes {
                acc += scoring.score(app, c.key, &c.background);
            }
        }
    }
    let per_lookup = t0.elapsed().as_nanos() as f64 / (rounds * lookups) as f64;
    results.push(json!({
        "suite": "scoring",
        "name": "warm_score_lookup",
        "metric": "table_load",
        "unit": "ns",
        "value": per_lookup,
        "iters": rounds * lookups,
        "checksum": acc,
    }));
    eprintln!("scoring/warm_score_lookup: {per_lookup:.1} ns");

    // N-dim scoring: the same warm lookup routed through the machine-
    // class adjustment (`class_score`) on a mixed local/remote cluster —
    // the generalized path every scheduler now calls when a class table
    // is installed. Gated by name in bench_gate (its own band, see
    // `GATED_NAMES`): the network adjustment must stay a handful of
    // arithmetic ops on top of the dense table load.
    let demand_by_app: Vec<f64> = (0..apps.len()).map(|i| 4.0 + 2.0 * i as f64).collect();
    let nd_scoring = ScoringPolicy::new(&predictor, Objective::MinRuntime).with_machine_classes(
        vec![
            MachineClass::local(),
            MachineClass::remote("iscsi", 2.0, 0.5, 60.0),
        ],
        demand_by_app,
    );
    let mut nd_cluster = ClusterState::new(8, 2, chars.clone());
    nd_cluster.set_machine_classes(
        vec![
            MachineClass::local(),
            MachineClass::remote("iscsi", 2.0, 0.5, 60.0),
        ],
        (0..8).map(|m| (m % 2) as u16).collect(),
    );
    for (m, &id) in apps.iter().enumerate() {
        nd_cluster.place(
            tracon_core::VmRef {
                machine: m,
                slot: 0,
            },
            tracon_core::Resident {
                task_id: m as u64,
                app: id,
            },
        );
    }
    let nd_classes = nd_cluster.free_classes();
    for &app in &apps {
        for c in &nd_classes {
            nd_scoring.class_score(app, c);
        }
    }
    let nd_lookups = apps.len() * nd_classes.len();
    let t0 = Instant::now();
    let mut nd_acc = 0.0f64;
    for _ in 0..rounds {
        for &app in &apps {
            for c in &nd_classes {
                nd_acc += nd_scoring.class_score(app, c);
            }
        }
    }
    let nd_per_lookup = t0.elapsed().as_nanos() as f64 / (rounds * nd_lookups) as f64;
    results.push(json!({
        "suite": "scoring",
        "name": "scoring_ndim_ns",
        "metric": "class_score",
        "unit": "ns",
        "value": nd_per_lookup,
        "iters": rounds * nd_lookups,
        "checksum": nd_acc,
    }));
    eprintln!("scoring/scoring_ndim_ns: {nd_per_lookup:.1} ns");
}

/// Times the event-kernel hot paths: end-to-end simulator event
/// throughput (the metric the timing-wheel swap is gated on), raw queue
/// push/pop round-trips for both backends, and MIX's per-head search
/// cost after the flat-scoring rewrite.
fn kernel_suite(quick: bool, tb: &Testbed, results: &mut Vec<serde_json::Value>) {
    // End-to-end kernel throughput: a fig9-style horizon-bounded dynamic
    // run on 16 machines under MIBS_8 — the regime every registry sweep
    // exercises — reported as events drained per wall-clock second
    // (`SimResult::events_processed` over elapsed time).
    let horizon = if quick { 600.0 } else { 3600.0 };
    let reps = if quick { 10 } else { 20 };
    let trace = poisson_trace(600.0, horizon, WorkloadMix::Medium, 42);
    for (name, backend) in [
        ("kernel_events_per_sec", QueueBackend::TimingWheel),
        ("kernel_events_per_sec_heap", QueueBackend::BinaryHeap),
    ] {
        let sim = Simulation::new(tb, 16, SchedulerKind::Mibs(8)).with_queue_backend(backend);
        // One warm pass so both backends time the same warmed caches,
        // then aggregate over repetitions: a single run drains in
        // milliseconds, too short for a stable throughput figure.
        sim.run(&trace, Some(horizon));
        let mut events = 0usize;
        let t0 = Instant::now();
        for _ in 0..reps {
            events += sim.run(&trace, Some(horizon)).events_processed;
        }
        let elapsed = t0.elapsed().as_secs_f64();
        let eps = events as f64 / elapsed.max(1e-9);
        results.push(json!({
            "suite": "kernel",
            "name": name,
            "metric": "event_throughput",
            "unit": "events/s",
            "value": eps,
            "events": events,
            "reps": reps,
        }));
        eprintln!("kernel/{name}: {eps:.0} events/s ({events} events in {elapsed:.3} s)");
    }

    // Raw queue push/pop round-trip over a workload-like time stream:
    // monotone arrivals with jitter and ~5% exact coincidences, the same
    // shape the simulator feeds the queue.
    let n_events: usize = if quick { 50_000 } else { 500_000 };
    let times = {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut t = 0.0f64;
        let mut out: Vec<f64> = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            if !out.is_empty() && rng.gen_range(0..20) == 0 {
                out.push(*out.last().unwrap());
            } else {
                t += rng.gen_range(0.0..2.0);
                out.push(t + rng.gen_range(-0.5..0.5));
            }
        }
        out
    };
    for (name, backend) in [
        ("queue_push_pop_ns", QueueBackend::TimingWheel),
        ("queue_push_pop_ns_heap", QueueBackend::BinaryHeap),
    ] {
        // Warm pass so the first allocation of the arena is not timed.
        queue_roundtrip_checksum(&times, backend);
        let t0 = Instant::now();
        let checksum = queue_roundtrip_checksum(&times, backend);
        let per_op = t0.elapsed().as_nanos() as f64 / (2 * n_events) as f64;
        results.push(json!({
            "suite": "kernel",
            "name": name,
            "metric": "queue_roundtrip",
            "unit": "ns",
            "value": per_op,
            "events": n_events,
            "checksum": checksum,
        }));
        eprintln!("kernel/{name}: {per_op:.1} ns per push+pop");
    }

    // MIX head search: one schedule() call over a 32-task window on 16
    // machines, reported per head candidate (32 heads per call).
    let (predictor, chars) = synthetic_world(8);
    let (warmup, iters) = if quick { (3, 20) } else { (10, 200) };
    let ns = bench(
        warmup,
        iters,
        || {
            (
                Mix::new(32),
                batch(32, 8, 5),
                ClusterState::new(16, 2, chars.clone()),
                ScoringPolicy::new(&predictor, Objective::MinRuntime),
            )
        },
        |(mut s, mut q, mut cl, sc)| {
            s.schedule(&mut q, &mut cl, &sc);
        },
    );
    let per_head = ns / 32.0;
    results.push(json!({
        "suite": "kernel",
        "name": "mix_head_search_ns",
        "metric": "head_search",
        "unit": "ns",
        "value": per_head,
        "iters": iters,
    }));
    eprintln!(
        "kernel/mix_head_search_ns: {:.1} us per head candidate",
        per_head / 1e3
    );
}

/// Times tracond end-to-end over loopback TCP with durability on:
/// pipelined closed-loop clients submitting and completing against an
/// in-process daemon at `--shards 1` and `--shards 4`. Every admission
/// is an fsync'd WAL append, and each shard owns its own log file, so
/// the sharded daemon overlaps commit latency across N writers — the
/// architectural win this row is gated on, and one that holds even on a
/// single core because fsync time is device wait, not CPU. A second
/// probe times the raw WAL fsync path at batch sizes 1 and 16 — the
/// group-commit win the reactor's per-poll batching is built on.
fn tracond_suite(quick: bool, tb: &Testbed, results: &mut Vec<serde_json::Value>) {
    let rounds = if quick { 4 } else { 12 };
    let batch = 128usize;
    let clients = 4usize;
    let max_shards = 4usize;
    // Submit mix: rotate across the shard *groups* of the profiled apps
    // (the same rotation for both daemon configurations), so the row
    // measures commit-path parallelism rather than the hash luck of a
    // small app universe — a uniform-partition workload, the standard
    // framing for benchmarking a partitioned service.
    let submit_mix: Vec<String> = {
        let probe = Service::new(
            tb,
            ServeConfig {
                machines: 2,
                slots_per_machine: 2,
                scheduler: SchedKind::Mios,
                ..ServeConfig::default()
            },
            std::sync::Arc::new(Metrics::new()),
        );
        let mut groups: Vec<Vec<String>> = vec![Vec::new(); max_shards];
        for name in &tb.perf.names {
            let id = probe.app_id(name).expect("profiled app interns");
            groups[route_app(id, max_shards)].push(name.clone());
        }
        groups.retain(|g| !g.is_empty());
        (0..batch)
            .map(|i| {
                let group = &groups[i % groups.len()];
                group[(i / groups.len()) % group.len()].clone()
            })
            .collect()
    };
    // The device's fsync latency drifts (journal warmup, queue state), so
    // interleave two passes per configuration and keep each one's best —
    // the standard best-of-N defence against one-sided noise.
    let mut best: HashMap<usize, (f64, usize)> = HashMap::new();
    for pass in 0..2 {
        for shards in [1usize, max_shards] {
            let wal_dir = std::env::temp_dir().join(format!(
                "tracon-bench-daemon-{}-s{shards}-p{pass}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&wal_dir);
            // Sized so the worst-case in-flight population (one round
            // awaiting completion plus one round of fresh submits from
            // every client) always places: queued stragglers would leak
            // slots for the rest of the run and poison the closed loop.
            let cfg = ServeConfig {
                machines: 512,
                slots_per_machine: 4,
                scheduler: SchedKind::Mios,
                queue_capacity: 4096,
                lease_base_ms: 600_000, // no lease churn inside the run
                wal_dir: Some(wal_dir.clone()),
                wal_snapshot_every: u64::MAX,
                shards,
                ..ServeConfig::default()
            };
            let handle = daemon::start(tb, cfg, NetConfig::default()).expect("daemon starts");
            let addr = handle.addr.to_string();
            let t0 = Instant::now();
            let threads: Vec<_> = (0..clients)
                .map(|_| {
                    let addr = addr.clone();
                    let names = submit_mix.clone();
                    std::thread::spawn(move || -> usize {
                        let mut client = Client::connect(&addr).expect("bench client connects");
                        let mut requests = 0usize;
                        // Each pipelined batch interleaves this round's
                        // submits with completions for the *previous*
                        // round's tasks — the steady-state mix of a
                        // closed-loop client fleet. Interleaving matters:
                        // it keeps every shard's WAL writer busy at once,
                        // so commit waits overlap across shards;
                        // phase-separated batches would serialize exactly
                        // that overlap away.
                        let mut prev: Vec<u64> = Vec::new();
                        for _ in 0..rounds {
                            let mut reqs: Vec<Request> = Vec::new();
                            let mut submit_at: Vec<usize> = Vec::new();
                            for i in 0..batch {
                                submit_at.push(reqs.len());
                                reqs.push(Request::Submit {
                                    app: names[i % names.len()].clone(),
                                    demand: None,
                                });
                                if let Some(&task) = prev.get(i) {
                                    reqs.push(Request::Complete {
                                        task,
                                        runtime: 5.0,
                                        iops: 90.0,
                                    });
                                }
                            }
                            let replies = client.pipeline(&reqs).expect("bench batch");
                            requests += reqs.len();
                            prev = submit_at
                                .iter()
                                .filter_map(|&at| match &replies[at] {
                                    Reply::Ok { result, .. }
                                        if result.get("state").and_then(|v| v.as_str())
                                            == Some("placed") =>
                                    {
                                        result.get("task").and_then(|v| v.as_u64())
                                    }
                                    _ => None,
                                })
                                .collect();
                        }
                        // Drain the last round so the daemon ends idle.
                        let completes: Vec<Request> = prev
                            .iter()
                            .map(|&task| Request::Complete {
                                task,
                                runtime: 5.0,
                                iops: 90.0,
                            })
                            .collect();
                        if !completes.is_empty() {
                            requests += completes.len();
                            client.pipeline(&completes).expect("final complete batch");
                        }
                        requests
                    })
                })
                .collect();
            let total: usize = threads
                .into_iter()
                .map(|t| t.join().expect("bench client thread"))
                .sum();
            let elapsed = t0.elapsed().as_secs_f64();
            handle.stop();
            handle.join();
            let _ = std::fs::remove_dir_all(&wal_dir);
            let rps = total as f64 / elapsed.max(1e-9);
            eprintln!(
                "tracond/shards{shards} pass {pass}: {rps:.0} req/s \
             ({total} requests in {elapsed:.3} s)"
            );
            let entry = best.entry(shards).or_insert((rps, total));
            if rps > entry.0 {
                *entry = (rps, total);
            }
        }
    }
    for shards in [1usize, max_shards] {
        let (rps, total) = best[&shards];
        results.push(json!({
            "suite": "tracond",
            "name": format!("tracond_requests_per_sec_shards{shards}"),
            "metric": "request_throughput",
            "unit": "req/s",
            "value": rps,
            "requests": total,
            "clients": clients,
        }));
        eprintln!("tracond/shards{shards}: {rps:.0} req/s (best of 2)");
    }

    // WAL fsync batching: one record per sync_data versus the 16-record
    // group commit `append_batch` issues for a poll's worth of work.
    // Same best-of-2, for the same reason.
    let dir = std::env::temp_dir().join(format!("tracon-bench-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let records = if quick { 512usize } else { 4096 };
    for batch_size in [1usize, 16] {
        let mut best_per_sec = 0.0f64;
        for _pass in 0..2 {
            let (mut wal, _) =
                Wal::open_shard(&dir, 0, u64::MAX).expect("bench WAL opens in a fresh dir");
            let recs: Vec<WalRecord> = (0..records as u64)
                .map(|task| WalRecord::Submit {
                    task: task + 1,
                    app: "bench-app".to_string(),
                })
                .collect();
            let t0 = Instant::now();
            for chunk in recs.chunks(batch_size) {
                wal.append_batch(chunk).expect("bench WAL append");
            }
            let per_sec = records as f64 / t0.elapsed().as_secs_f64().max(1e-9);
            drop(wal);
            let _ = std::fs::remove_dir_all(&dir);
            best_per_sec = best_per_sec.max(per_sec);
        }
        results.push(json!({
            "suite": "tracond",
            "name": format!("wal_fsync_batch{batch_size}_per_sec"),
            "metric": "wal_throughput",
            "unit": "records/s",
            "value": best_per_sec,
            "records": records,
        }));
        eprintln!("tracond/wal_fsync_batch{batch_size}: {best_per_sec:.0} records/s (best of 2)");
    }

    // WAL scrub throughput: the background scrubber's read-only re-walk
    // of a sealed log (length sanity + CRC per frame, snapshot parse) —
    // the cost ceiling on how often a node can afford to re-verify its
    // durable state. Reported as MB scanned per wall-clock second over a
    // page-warm log, best of 2 like the other device-adjacent rows.
    let dir = std::env::temp_dir().join(format!("tracon-bench-scrub-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let scrub_records = if quick { 2_000usize } else { 20_000 };
    {
        let (mut wal, _) = Wal::open_shard(&dir, 0, u64::MAX).expect("scrub bench WAL opens");
        let recs: Vec<WalRecord> = (0..scrub_records as u64)
            .map(|task| WalRecord::Submit {
                task: task + 1,
                app: "bench-app".to_string(),
            })
            .collect();
        for chunk in recs.chunks(64) {
            wal.append_batch(chunk).expect("scrub bench append");
        }
    }
    let scrub_passes = if quick { 8usize } else { 32 };
    // Warm pass: the row measures the CRC walk, not cold-cache reads.
    let warm = tracon_serve::wal::scrub_shard(&dir, 0).expect("scrub bench warm pass");
    assert!(warm.clean(), "bench log must scrub clean");
    let mut best_mbps = 0.0f64;
    for _pass in 0..2 {
        let mut bytes = 0u64;
        let t0 = Instant::now();
        for _ in 0..scrub_passes {
            bytes += tracon_serve::wal::scrub_shard(&dir, 0)
                .expect("scrub bench pass")
                .scanned_bytes;
        }
        let mbps = bytes as f64 / 1e6 / t0.elapsed().as_secs_f64().max(1e-9);
        best_mbps = best_mbps.max(mbps);
    }
    let _ = std::fs::remove_dir_all(&dir);
    results.push(json!({
        "suite": "tracond",
        "name": "wal_scrub_mb_per_sec",
        "metric": "scrub_throughput",
        "unit": "MB/s",
        "value": best_mbps,
        "records": scrub_records,
        "passes": scrub_passes,
    }));
    eprintln!("tracond/wal_scrub_mb_per_sec: {best_mbps:.0} MB/s (best of 2)");

    // WAL shipping: a follower-style client drains the leader's ship log
    // over loopback in `repl_pull` chunks — the replication fan-out path
    // a warm standby rides. The daemon keeps its ship log intact
    // (compaction disabled), so each pass re-pulls the same frames from
    // cursor zero; the row reports frames served per wall-clock second
    // across the reactor's inline pull handler and the NDJSON codec.
    let dir = std::env::temp_dir().join(format!("tracon-bench-ship-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let ship_tasks = if quick { 256usize } else { 1024 };
    let passes = if quick { 4usize } else { 8 };
    let cfg = ServeConfig {
        machines: 512,
        slots_per_machine: 4,
        scheduler: SchedKind::Mios,
        queue_capacity: 4096,
        lease_base_ms: 600_000,
        wal_dir: Some(dir.clone()),
        wal_snapshot_every: u64::MAX,
        ..ServeConfig::default()
    };
    let handle = daemon::start(tb, cfg, NetConfig::default()).expect("ship bench daemon starts");
    let addr = handle.addr.to_string();
    let mut client = Client::connect(&addr).expect("ship bench client connects");
    // Seed the ship log: every admission appends one WAL frame.
    for chunk_start in (0..ship_tasks).step_by(128) {
        let reqs: Vec<Request> = (chunk_start..(chunk_start + 128).min(ship_tasks))
            .map(|i| Request::Submit {
                app: submit_mix[i % submit_mix.len()].clone(),
                demand: None,
            })
            .collect();
        client.pipeline(&reqs).expect("ship bench submits");
    }
    let mut best_fps = 0.0f64;
    for _pass in 0..2 {
        let mut frames = 0u64;
        let t0 = Instant::now();
        for _ in 0..passes {
            let mut cursor = 0u64;
            loop {
                let reply = client
                    .request(Request::ReplPull {
                        epoch: 0,
                        shard: 0,
                        cursor,
                        addr: "bench:0".to_string(),
                        ttl_ms: 0,
                    })
                    .expect("ship bench pull");
                let Reply::Ok { result, .. } = reply else {
                    panic!("ship bench pull refused: {reply:?}");
                };
                frames += result
                    .get("frames")
                    .and_then(|v| v.as_arr())
                    .map(|a| a.len() as u64)
                    .unwrap_or(0);
                let next = result
                    .get("next")
                    .and_then(|v| v.as_u64())
                    .expect("pull chunk carries next");
                let ship_next = result
                    .get("ship_next")
                    .and_then(|v| v.as_u64())
                    .expect("pull chunk carries ship_next");
                cursor = next;
                if next >= ship_next {
                    break;
                }
            }
        }
        let fps = frames as f64 / t0.elapsed().as_secs_f64().max(1e-9);
        best_fps = best_fps.max(fps);
        eprintln!("tracond/wal_ship pass: {fps:.0} frames/s ({frames} frames)");
    }
    handle.stop();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
    results.push(json!({
        "suite": "tracond",
        "name": "wal_ship_frames_per_sec",
        "metric": "repl_throughput",
        "unit": "frames/s",
        "value": best_fps,
        "tasks": ship_tasks,
        "passes": passes,
    }));
    eprintln!("tracond/wal_ship_frames_per_sec: {best_fps:.0} frames/s (best of 2)");
}

fn macro_suite(quick: bool, tb: &Testbed, results: &mut Vec<serde_json::Value>) {
    let lambdas: &[f64] = if quick { &[10.0] } else { &[10.0, 20.0] };
    let mixes = [WorkloadMix::Light, WorkloadMix::Medium];
    let horizon = if quick { 1800.0 } else { 3600.0 };
    let reps = 2;
    let run = || {
        sweep::dynamic_sweep(
            tb,
            16,
            lambdas,
            &mixes,
            &fig9::SCHEDULERS,
            horizon,
            reps,
            42,
        )
    };

    par::override_threads(Some(1));
    let t0 = Instant::now();
    let serial_points = run();
    let serial_s = t0.elapsed().as_secs_f64();

    par::override_threads(None);
    let t0 = Instant::now();
    let parallel_points = run();
    let parallel_s = t0.elapsed().as_secs_f64();

    // Sanity: the parallel sweep must be bit-identical to the serial one.
    assert_eq!(serial_points.len(), parallel_points.len());
    for (a, b) in serial_points.iter().zip(&parallel_points) {
        assert_eq!(
            a.normalized_throughput.mean.to_bits(),
            b.normalized_throughput.mean.to_bits(),
            "parallel sweep diverged from serial"
        );
    }

    let threads = par::max_threads();
    let speedup = serial_s / parallel_s.max(1e-9);
    for (name, value, unit) in [
        ("fig9_reduced_sweep_serial", serial_s, "s"),
        ("fig9_reduced_sweep_parallel", parallel_s, "s"),
        ("fig9_reduced_sweep_speedup", speedup, "x"),
    ] {
        results.push(json!({
            "suite": "experiment_driver",
            "name": name,
            "metric": "wall_clock",
            "unit": unit,
            "value": value,
            "threads": threads,
        }));
    }
    eprintln!(
        "experiment_driver: serial {serial_s:.2} s, parallel {parallel_s:.2} s \
         ({speedup:.2}x on {threads} threads)"
    );
}

/// Times registry experiments end-to-end at test fidelity, so the
/// trajectory artifact tracks whole-driver wall clock per commit. Quick
/// mode samples the cheap, testbed-light drivers; the full collector
/// walks the whole registry.
fn registry_suite(quick: bool, results: &mut Vec<serde_json::Value>) {
    let cfg = ExperimentConfig::small();
    let cache = TestbedCache::new(&cfg);
    let names: Vec<&'static str> = if quick {
        vec!["fig3", "fig5_6", "ext_storage", "ext_network"]
    } else {
        REGISTRY.iter().map(|e| e.name()).collect()
    };
    for name in names {
        let exp = find(name).expect("registered experiment");
        let t0 = Instant::now();
        let report = exp.run(&cfg, &cache);
        let secs = t0.elapsed().as_secs_f64();
        results.push(json!({
            "suite": "experiments",
            "name": name,
            "metric": "wall_clock",
            "unit": "s",
            "value": secs,
            "rendered_bytes": report.rendered.len(),
        }));
        eprintln!("experiments/{name}: {secs:.2} s");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_1.json".to_string());

    let mut results = Vec::new();
    micro_suite(quick, &mut results);
    eprintln!("building reduced testbed for the kernel and macro suites ...");
    let tb = Testbed::build(&TestbedConfig::small());
    kernel_suite(quick, &tb, &mut results);
    tracond_suite(quick, &tb, &mut results);
    macro_suite(quick, &tb, &mut results);
    registry_suite(quick, &mut results);

    // A measurement of exactly zero means the clock never ran — a
    // hand-written placeholder or a broken timer, not a benchmark. Refuse
    // to emit such rows rather than seed the trajectory with them.
    let dead: Vec<String> = results
        .iter()
        .filter(|row| {
            let value = row.get("value").and_then(|v| v.as_f64());
            !value.is_some_and(|v| v.is_finite() && v > 0.0)
        })
        .map(|row| {
            format!(
                "{}/{}",
                row.get("suite").and_then(|v| v.as_str()).unwrap_or("?"),
                row.get("name").and_then(|v| v.as_str()).unwrap_or("?")
            )
        })
        .collect();
    if !dead.is_empty() {
        eprintln!(
            "refusing to write artifact: {} measurement(s) are zero or non-finite: {}",
            dead.len(),
            dead.join(", ")
        );
        std::process::exit(1);
    }

    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let doc = json!({
        "schema_version": 1,
        "suite": "tracon-bench/collect",
        "mode": if quick { "quick" } else { "full" },
        "unix_time": unix_time,
        "host": json!({
            "os": std::env::consts::OS,
            "arch": std::env::consts::ARCH,
            "cpus": std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        }),
        "results": results,
    });
    let rendered = serde_json::to_string_pretty(&doc).expect("serialize benchmark document");
    std::fs::write(&out, rendered + "\n").expect("write benchmark artifact");
    eprintln!("wrote {out}");
}
