//! Regenerates Fig 12: MIBS queue lengths across cluster sizes.
use tracon_dcsim::experiments::{fig11, fig12};

fn main() {
    let opts = tracon_bench::parse_args();
    let cfg = tracon_bench::config(opts);
    let tb = tracon_bench::build_testbed(&cfg);
    let machines = tracon_bench::machine_counts(opts);
    let reps = if opts.quick { 1 } else { 3 };
    let fig = tracon_bench::timed("fig12", || {
        fig12::run(&tb, &machines, fig11::LAMBDA, reps, cfg.seed)
    });
    fig.print();
    println!("\npaper shape: longer queue sustains higher normalized throughput across sizes");
}
