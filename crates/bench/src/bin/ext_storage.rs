//! Extension: interference across storage device types (the paper's
//! Section 5 future work — RAID, SSD, network storage).
use tracon_dcsim::experiments::ext_storage;

fn main() {
    let opts = tracon_bench::parse_args();
    let time_scale = if opts.quick { 0.1 } else { 0.25 };
    let fig = tracon_bench::timed("ext_storage", || ext_storage::run(time_scale, 7));
    fig.print();
}
