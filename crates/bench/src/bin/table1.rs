//! Regenerates Table 1: normalized App1 runtime under App2 interference.
use tracon_dcsim::experiments::table1;
use tracon_vmsim::HostConfig;

fn main() {
    let _ = tracon_bench::parse_args();
    let t = tracon_bench::timed("table1", || table1::run(HostConfig::testbed(), 1));
    t.print();
    println!("\npaper: Calc    1.96 / 1.26 / 1.77 / 2.52");
    println!("paper: SeqRead 1.03 / 10.23 / 1.78 / 16.11");
}
