//! CI regression gate for the `BENCH_*.json` trajectory.
//!
//! ```text
//! cargo run --release -p tracon-bench --bin bench_gate -- --fresh BENCH_quick.json
//! ```
//!
//! Finds the latest committed artifact (`BENCH_<N>.json` with the highest
//! `N` in `--baseline-dir`, default the current directory), loads the
//! fresh artifact from `--fresh`, and compares every throughput row —
//! where higher is better — that appears in both. Throughput rows are
//! the `events/s` kernel figures, the `req/s` tracond loopback figures,
//! the `records/s` WAL fsync figures, the `frames/s` WAL shipping
//! figure, and the `MB/s` WAL scrub figure; each unit carries its own
//! tolerance band (see `GATED_UNITS`), and a fresh value below the
//! committed one by more than its band fails the gate (exit 1). When no
//! committed artifact exists yet the gate skips
//! gracefully (exit 0), so the first artifact of a repository bootstraps
//! the trajectory instead of breaking CI.
//!
//! Only throughput rows are gated by unit: the `ns`- and `s`-unit rows
//! mix machine speed into the comparison too directly for a hard CI gate
//! across heterogeneous runners, while events/s regressions of >20% have
//! so far only come from real algorithmic regressions. A handful of
//! latency rows are additionally gated *by name* (see `GATED_NAMES`)
//! with wide bands: they compare against a baseline from the same
//! trajectory, so only order-of-magnitude blowups — an accidental
//! allocation or hash lookup on a formerly arithmetic-only path — trip
//! them.

use serde_json::Value;
use std::path::{Path, PathBuf};

/// Units gated by this binary (higher is better), each with the
/// fractional slowdown tolerated before the gate fails. The CPU-clean
/// kernel rows get a tight band; the tracond and WAL rows are bounded by
/// device fsync latency, which drifts by tens of percent run to run on
/// shared runners, so their band is wide enough to only catch
/// architectural regressions (a lost fsync batch, a serialized shard).
const GATED_UNITS: &[(&str, f64)] = &[
    ("events/s", 0.20),
    ("req/s", 0.45),
    ("records/s", 0.45),
    ("frames/s", 0.45),
    // WAL scrub throughput (MB scanned per second, higher is better):
    // a CRC walk over a page-warm log, so regressions past the wide
    // device band mean the scrubber grew a copy or re-read it must not.
    ("MB/s", 0.45),
];

/// Rows gated by *name* (lower is better), each with the fractional
/// slowdown tolerated before the gate fails. `scoring_ndim_ns` is the
/// machine-class scoring hot path: a warm `class_score` is a dense table
/// load plus a few multiplies, so even across heterogeneous runners a
/// 2x blowup means the adjustment grew a lookup or allocation it must
/// not have.
const GATED_NAMES: &[(&str, f64)] = &[("scoring_ndim_ns", 1.0)];

/// Returns the `BENCH_<N>.json` path with the highest `N` in `dir`.
fn latest_artifact(dir: &Path) -> Option<PathBuf> {
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let path = entry.path();
        let Some(n) = path
            .file_name()
            .and_then(|f| f.to_str())
            .and_then(|f| f.strip_prefix("BENCH_"))
            .and_then(|f| f.strip_suffix(".json"))
            .and_then(|f| f.parse::<u64>().ok())
        else {
            continue;
        };
        if best.as_ref().is_none_or(|(bn, _)| n > *bn) {
            best = Some((n, path));
        }
    }
    best.map(|(_, p)| p)
}

/// Loads an artifact's gated rows as `(suite/name, value, tolerance,
/// higher_is_better)`.
fn gated_rows(path: &Path) -> Result<Vec<(String, f64, f64, bool)>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let doc: Value =
        serde_json::from_str(&text).map_err(|e| format!("parse {}: {e:?}", path.display()))?;
    let results = doc
        .get("results")
        .and_then(|r| r.as_array())
        .ok_or_else(|| format!("{}: no results array", path.display()))?;
    let mut rows = Vec::new();
    for row in results {
        let unit = row.get("unit").and_then(|v| v.as_str()).unwrap_or("");
        let name = row.get("name").and_then(|v| v.as_str()).unwrap_or("?");
        let (tolerance, higher_is_better) =
            if let Some(&(_, t)) = GATED_UNITS.iter().find(|(u, _)| *u == unit) {
                (t, true)
            } else if let Some(&(_, t)) = GATED_NAMES.iter().find(|(n, _)| *n == name) {
                (t, false)
            } else {
                continue;
            };
        let suite = row.get("suite").and_then(|v| v.as_str()).unwrap_or("?");
        let value = row
            .get("value")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("{}: {suite}/{name} has no numeric value", path.display()))?;
        rows.push((
            format!("{suite}/{name}"),
            value,
            tolerance,
            higher_is_better,
        ));
    }
    Ok(rows)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let Some(fresh_path) = arg_after("--fresh") else {
        eprintln!("usage: bench_gate --fresh <BENCH.json> [--baseline-dir <dir>]");
        std::process::exit(2);
    };
    let baseline_dir = arg_after("--baseline-dir").unwrap_or_else(|| ".".to_string());

    let Some(baseline_path) = latest_artifact(Path::new(&baseline_dir)) else {
        println!(
            "bench_gate: no committed BENCH_<N>.json under {baseline_dir}; \
             skipping regression gate"
        );
        return;
    };
    let baseline = match gated_rows(&baseline_path) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            std::process::exit(2);
        }
    };
    let fresh = match gated_rows(Path::new(&fresh_path)) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            std::process::exit(2);
        }
    };
    if baseline.is_empty() {
        println!(
            "bench_gate: {} has no throughput rows to gate on; skipping",
            baseline_path.display()
        );
        return;
    }

    println!(
        "bench_gate: comparing {fresh_path} against {}",
        baseline_path.display()
    );
    let mut failures = Vec::new();
    for (key, base_value, tolerance, higher_is_better) in &baseline {
        let Some((_, fresh_value, _, _)) = fresh.iter().find(|(k, _, _, _)| k == key) else {
            println!("  {key}: missing from fresh artifact (skipped)");
            continue;
        };
        let ratio = fresh_value / base_value.max(1e-12);
        let failed = if *higher_is_better {
            ratio < 1.0 - tolerance
        } else {
            ratio > 1.0 + tolerance
        };
        let verdict = if failed { "FAIL" } else { "ok" };
        println!(
            "  {key}: committed {base_value:.0}, fresh {fresh_value:.0} \
             ({:+.1}%, band {:.0}%{}) {verdict}",
            (ratio - 1.0) * 100.0,
            tolerance * 100.0,
            if *higher_is_better {
                ""
            } else {
                ", lower is better"
            }
        );
        if failed {
            failures.push(key.clone());
        }
    }
    if !failures.is_empty() {
        eprintln!(
            "bench_gate: {} gated metric(s) regressed beyond tolerance: {}",
            failures.len(),
            failures.join(", ")
        );
        std::process::exit(1);
    }
    println!("bench_gate: all gated metrics within tolerance");
}
