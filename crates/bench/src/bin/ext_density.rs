//! Extension: consolidation density beyond two VMs per machine, and
//! validation of the dominant-neighbour replay approximation.
use tracon_dcsim::experiments::ext_density;

fn main() {
    let opts = tracon_bench::parse_args();
    let time_scale = if opts.quick { 0.1 } else { 0.25 };
    let fig = tracon_bench::timed("ext_density", || ext_density::run(time_scale, 7));
    fig.print();
}
