//! Regenerates Fig 10: MIBS queue lengths vs arrival rate.
use tracon_dcsim::experiments::fig10;

fn main() {
    let opts = tracon_bench::parse_args();
    let cfg = tracon_bench::config(opts);
    let tb = tracon_bench::build_testbed(&cfg);
    let fig = tracon_bench::timed("fig10", || {
        fig10::run(
            &tb,
            &cfg.lambdas,
            cfg.machines,
            cfg.sweep_repetitions,
            cfg.seed,
        )
    });
    fig.print();
    println!("\npaper shape: longer queue sustains higher normalized throughput");
}
