//! Regenerates Fig 7: online model learning across a storage change.
use tracon_dcsim::experiments::fig7;

fn main() {
    let opts = tracon_bench::parse_args();
    let cfg = if opts.quick {
        fig7::Fig7Config {
            initial_points: 200,
            stream_points: 200,
            ..fig7::Fig7Config::full()
        }
    } else {
        fig7::Fig7Config::full()
    };
    let fig = tracon_bench::timed("fig7", || fig7::run(&cfg));
    fig.print();
    println!("\npaper: runtime error 12% -> 160%, IOPS 12% -> 83%, back to ~10% after rebuilds");
}
