//! Ablation: what each MIBS design decision contributes (DESIGN.md §5).
use tracon_dcsim::experiments::ext_ablation;

fn main() {
    let opts = tracon_bench::parse_args();
    let cfg = tracon_bench::config(opts);
    let tb = tracon_bench::build_testbed(&cfg);
    let fig = tracon_bench::timed("ext_ablation", || {
        ext_ablation::run(&tb, cfg.repetitions * 3, cfg.seed)
    });
    fig.print();
}
