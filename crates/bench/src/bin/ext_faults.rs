//! Extension: scheduler comparison under machine churn, task failures,
//! and stragglers, against each scheduler's own fault-free baseline.
use tracon_dcsim::experiments::ext_faults;

fn main() {
    let opts = tracon_bench::parse_args();
    let cfg = tracon_bench::config(opts);
    let tb = tracon_bench::build_testbed(&cfg);
    let fcfg = if opts.quick {
        ext_faults::ExtFaultsConfig::small()
    } else {
        ext_faults::ExtFaultsConfig::full()
    };
    let fig = tracon_bench::timed("ext_faults", || ext_faults::run(&tb, &fcfg));
    fig.print();
    println!("\nexpected shape: interference-aware schedulers keep their edge under churn");
}
