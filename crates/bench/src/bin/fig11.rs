//! Regenerates Fig 11: scheduler scalability across cluster sizes.
use tracon_dcsim::experiments::fig11;

fn main() {
    let opts = tracon_bench::parse_args();
    let cfg = tracon_bench::config(opts);
    let tb = tracon_bench::build_testbed(&cfg);
    let machines = tracon_bench::machine_counts(opts);
    let reps = if opts.quick { 1 } else { 3 };
    let fig = tracon_bench::timed("fig11", || {
        fig11::run(&tb, &machines, fig11::LAMBDA, reps, cfg.seed)
    });
    fig.print();
    if !opts.quick {
        let point = tracon_bench::timed("fig11 (10k machines)", || fig11::run_10k(&tb, cfg.seed));
        println!(
            "10,000 machines at lambda x10: MIBS_8 normalized throughput {:.3}",
            point.normalized_throughput.mean
        );
    }
    println!("\npaper shape: MIBS_8 close to MIX_8, MIOS least improvement");
}
