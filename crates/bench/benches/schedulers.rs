//! Criterion microbenchmarks of the schedulers: batch scheduling cost of
//! FIFO / MIOS / MIBS / MIX across cluster sizes — the overhead trade-off
//! the paper discusses (MIOS cheapest, MIX most expensive).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};
use tracon_core::characteristics::N_JOINT;
use tracon_core::{
    AppModelSet, AppProfile, AppRegistry, Characteristics, ClusterState, Fifo, InterferenceModel,
    Mibs, Mios, Mix, ModelKind, Objective, Predictor, Scheduler, ScoringPolicy, Task,
};

/// A cheap synthetic model (product interference) so the benchmark
/// measures scheduler logic rather than model evaluation.
struct ProductModel;
impl InterferenceModel for ProductModel {
    fn predict(&self, f: &[f64; N_JOINT]) -> f64 {
        100.0 + 0.01 * f[0] * f[4] + 50.0 * f[2] * f[6]
    }
    fn kind(&self) -> ModelKind {
        ModelKind::Nonlinear
    }
    fn n_terms(&self) -> usize {
        2
    }
}

fn synthetic_world(n_apps: usize) -> (Predictor, HashMap<String, Characteristics>) {
    let mut predictor = Predictor::new();
    let mut chars = HashMap::new();
    for i in 0..n_apps {
        let name = format!("app{i}");
        let c = Characteristics::new(
            30.0 * (i as f64 + 1.0),
            5.0 * i as f64,
            0.1 + 0.1 * i as f64,
            0.01 * (i as f64 + 1.0),
        );
        predictor.add_app(
            AppProfile {
                name: name.clone(),
                solo: c,
                solo_runtime: 100.0,
                solo_iops: c.total_rps(),
            },
            AppModelSet {
                runtime: Box::new(ProductModel),
                iops: Box::new(ProductModel),
            },
        );
        chars.insert(name, c);
    }
    (predictor, chars)
}

fn batch(n: usize, n_apps: usize, seed: u64) -> VecDeque<Task> {
    // Same id assignment as the ClusterState registry (sorted app names).
    let registry = AppRegistry::from_names((0..n_apps).map(|i| format!("app{i}")));
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let name = format!("app{}", rng.gen_range(0..n_apps));
            Task::new(i as u64, registry.expect_id(&name))
        })
        .collect()
}

fn bench_schedulers(c: &mut Criterion) {
    let (predictor, chars) = synthetic_world(8);
    let mut group = c.benchmark_group("schedule_batch_32_tasks_16_machines");
    #[allow(clippy::type_complexity)]
    let schedulers: Vec<(&str, Box<dyn Fn() -> Box<dyn Scheduler>>)> = vec![
        ("FIFO", Box::new(|| Box::new(Fifo))),
        ("MIOS", Box::new(|| Box::new(Mios))),
        ("MIBS", Box::new(|| Box::new(Mibs::new(32)))),
        ("MIX", Box::new(|| Box::new(Mix::new(32)))),
    ];
    for (name, make) in &schedulers {
        group.bench_function(*name, |b| {
            b.iter_batched(
                || {
                    (
                        make(),
                        batch(32, 8, 5),
                        ClusterState::new(16, 2, chars.clone()),
                        ScoringPolicy::new(&predictor, Objective::MinRuntime),
                    )
                },
                |(mut s, mut q, mut cl, sc)| s.schedule(&mut q, &mut cl, &sc),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_cluster_scaling(c: &mut Criterion) {
    // MIBS cost must stay flat as the cluster grows (the neighbour-class
    // index makes scheduling O(window x classes), not O(window x VMs)).
    let (predictor, chars) = synthetic_world(8);
    let mut group = c.benchmark_group("mibs8_one_batch_by_cluster_size");
    for &machines in &[16usize, 128, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(machines), &machines, |b, &m| {
            b.iter_batched(
                || {
                    (
                        Mibs::new(8),
                        batch(8, 8, 9),
                        ClusterState::new(m, 2, chars.clone()),
                        ScoringPolicy::new(&predictor, Objective::MinRuntime),
                    )
                },
                |(mut s, mut q, mut cl, sc)| s.schedule(&mut q, &mut cl, &sc),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers, bench_cluster_scaling);
criterion_main!(benches);
