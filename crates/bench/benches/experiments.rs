//! Criterion benchmarks of the end-to-end experiment pipelines at
//! reduced scale: one co-run of the virtualized-testbed engine, one
//! profiling pass, and one static / dynamic data-center simulation —
//! the building blocks each table/figure driver repeats.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::OnceLock;
use tracon_dcsim::arrival::{poisson_trace, static_batch, WorkloadMix};
use tracon_dcsim::{SchedulerKind, Simulation, Testbed, TestbedConfig};
use tracon_vmsim::{apps, Engine, HostConfig};

fn testbed() -> &'static Testbed {
    static TB: OnceLock<Testbed> = OnceLock::new();
    TB.get_or_init(|| Testbed::build(&TestbedConfig::small()))
}

fn bench_corun(c: &mut Criterion) {
    let engine = Engine::new(HostConfig::testbed());
    let target = apps::Benchmark::Video.model().time_scaled(0.1);
    let bg = apps::synthetic(0.5, 0.75, 0.5);
    c.bench_function("vmsim_corun_video_vs_synth", |b| {
        b.iter(|| engine.co_run(&target, &bg, 7))
    });
}

fn bench_profile_pass(c: &mut Criterion) {
    let engine = Engine::new(HostConfig::testbed());
    let profiler = tracon_vmsim::Profiler::new(engine);
    let target = apps::Benchmark::Dedup.model().time_scaled(0.1);
    let backgrounds: Vec<_> = [0.0f64, 0.5, 1.0]
        .iter()
        .map(|&l| apps::synthetic(l, l, l))
        .collect();
    c.bench_function("vmsim_profile_3_backgrounds", |b| {
        b.iter(|| profiler.profile(&target, &backgrounds, 3))
    });
}

fn bench_static_simulation(c: &mut Criterion) {
    let tb = testbed();
    let trace = static_batch(32, WorkloadMix::Medium, 11);
    c.bench_function("dcsim_static_mibs_32tasks_16machines", |b| {
        b.iter(|| Simulation::new(tb, 16, SchedulerKind::Mibs(32)).run(&trace, None))
    });
}

fn bench_dynamic_simulation(c: &mut Criterion) {
    let tb = testbed();
    let trace = poisson_trace(20.0, 1800.0, WorkloadMix::Medium, 13);
    c.bench_function("dcsim_dynamic_mibs8_30min_16machines", |b| {
        b.iter(|| Simulation::new(tb, 16, SchedulerKind::Mibs(8)).run(&trace, Some(1800.0)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_corun, bench_profile_pass, bench_static_simulation, bench_dynamic_simulation
}
criterion_main!(benches);
