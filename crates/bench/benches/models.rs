//! Criterion microbenchmarks of the interference-model pipeline: basis
//! expansion, training (WMM / LM / NLM), and single-shot prediction —
//! the operations the scheduler and the online monitor pay for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tracon_core::{train_model_scaled, ModelKind, ResponseScale, TrainingData};

fn synthetic_training_data(n: usize, seed: u64) -> TrainingData {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = TrainingData::default();
    for _ in 0..n {
        let f: [f64; 8] = std::array::from_fn(|i| {
            if i == 0 || i == 4 {
                rng.gen_range(0.0..300.0)
            } else {
                rng.gen_range(0.0..1.0)
            }
        });
        let y = 50.0 + 0.2 * f[0] + 0.002 * f[0] * f[4] + 40.0 * f[6] + rng.gen_range(-1.0..1.0);
        data.push(f, y);
    }
    data
}

fn bench_training(c: &mut Criterion) {
    let data = synthetic_training_data(125, 7);
    let mut group = c.benchmark_group("model_training_125pts");
    for kind in [ModelKind::Wmm, ModelKind::Linear, ModelKind::Nonlinear] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| train_model_scaled(kind, &data, ResponseScale::Linear));
            },
        );
    }
    group.finish();
}

fn bench_prediction(c: &mut Criterion) {
    let data = synthetic_training_data(125, 11);
    let mut group = c.benchmark_group("model_prediction");
    for kind in [ModelKind::Wmm, ModelKind::Linear, ModelKind::Nonlinear] {
        let model = train_model_scaled(kind, &data, ResponseScale::Linear);
        let query = data.features[3];
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &model, |b, m| {
            b.iter(|| m.predict(&query));
        });
    }
    group.finish();
}

fn bench_stepwise_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("nlm_training_by_sample_size");
    for &n in &[50usize, 125, 250, 500] {
        let data = synthetic_training_data(n, n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, d| {
            b.iter(|| train_model_scaled(ModelKind::Nonlinear, d, ResponseScale::Linear));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_training,
    bench_prediction,
    bench_stepwise_scaling
);
criterion_main!(benches);
