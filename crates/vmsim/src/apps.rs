//! The data-intensive benchmark suite of the paper (Table 3), the
//! microbenchmarks used in the motivating Table 1, and the synthetic
//! calibration workload generator (Section 3.1).
//!
//! Benchmark models preserve each application's published qualitative
//! behaviour and its I/O-intensity *rank* (Table 3: email=1 lowest ...
//! video=8 highest). Absolute data sizes are scaled down by roughly 10x
//! so a full profiling campaign (8 apps x 126 backgrounds) simulates in
//! seconds; runtimes and IOPS keep their relative structure, which is all
//! the models and schedulers consume.

use crate::app::{AppModel, Phase};
use serde::{Deserialize, Serialize};

/// Identifier for the eight paper benchmarks, ordered by Table 3's
/// I/O-intensity rank (low to high).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Benchmark {
    /// Postmark email-server workload (rank 1, lowest IOPS).
    Email,
    /// FileBench web-server workload (rank 2; IOPS-only response).
    Web,
    /// NIH BLAST protein search over the NR database (rank 3).
    Blastp,
    /// Linux kernel compilation (rank 4).
    Compile,
    /// Parsec frequent-itemset mining (rank 5).
    Freqmine,
    /// NIH BLAST nucleotide search over the NT database (rank 6).
    Blastn,
    /// Parsec deduplication/compression pipeline (rank 7).
    Dedup,
    /// Parsec H.264 video encoding (rank 8, highest IOPS).
    Video,
}

impl Benchmark {
    /// All benchmarks in rank order (email first, video last).
    pub const ALL: [Benchmark; 8] = [
        Benchmark::Email,
        Benchmark::Web,
        Benchmark::Blastp,
        Benchmark::Compile,
        Benchmark::Freqmine,
        Benchmark::Blastn,
        Benchmark::Dedup,
        Benchmark::Video,
    ];

    /// The benchmark's I/O intensity rank from Table 3 (1 = lowest IOPS).
    pub fn io_rank(&self) -> usize {
        match self {
            Benchmark::Email => 1,
            Benchmark::Web => 2,
            Benchmark::Blastp => 3,
            Benchmark::Compile => 4,
            Benchmark::Freqmine => 5,
            Benchmark::Blastn => 6,
            Benchmark::Dedup => 7,
            Benchmark::Video => 8,
        }
    }

    /// Benchmark with the given Table 3 rank (1-8).
    ///
    /// # Panics
    /// Panics when `rank` is outside `1..=8`.
    pub fn from_io_rank(rank: usize) -> Benchmark {
        assert!((1..=8).contains(&rank), "rank {rank} out of range");
        Benchmark::ALL[rank - 1]
    }

    /// Lower-case name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Email => "email",
            Benchmark::Web => "web",
            Benchmark::Blastp => "blastp",
            Benchmark::Compile => "compile",
            Benchmark::Freqmine => "freqmine",
            Benchmark::Blastn => "blastn",
            Benchmark::Dedup => "dedup",
            Benchmark::Video => "video",
        }
    }

    /// Parses a benchmark from its lower-case name.
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL.iter().copied().find(|b| b.name() == name)
    }

    /// Builds the behaviour model for this benchmark.
    pub fn model(&self) -> AppModel {
        match self {
            Benchmark::Email => email(),
            Benchmark::Web => web(),
            Benchmark::Blastp => blastp(),
            Benchmark::Compile => compile(),
            Benchmark::Freqmine => freqmine(),
            Benchmark::Blastn => blastn(),
            Benchmark::Dedup => dedup(),
            Benchmark::Video => video(),
        }
    }
}

fn repeat_cycles(cycle: Vec<Phase>, n: usize) -> Vec<Phase> {
    let mut phases = Vec::with_capacity(cycle.len() * n);
    for _ in 0..n {
        phases.extend_from_slice(&cycle);
    }
    phases
}

/// Postmark email-server workload: huge numbers of tiny create / read /
/// write / delete operations on small files. Low aggregate IOPS, fully
/// random access, very light CPU.
pub fn email() -> AppModel {
    let cycle = vec![Phase {
        nominal_s: 30.0,
        read_rps: 8.0,
        write_rps: 10.0,
        req_kb: 4.0,
        sequentiality: 0.08,
        cpu: 0.08,
        background_cpu: 0.0,
    }];
    AppModel::new("email", repeat_cycles(cycle, 12)).with_jitter(0.08)
}

/// FileBench web-server profile: 100 threads doing open/read/close over
/// 10,000 small files with a log append every ten operations. Bursty
/// random reads; runtime is an input to FileBench, so only IOPS is a
/// meaningful response (the paper excludes web from runtime figures).
pub fn web() -> AppModel {
    let cycle = vec![
        Phase {
            nominal_s: 6.0,
            read_rps: 34.0,
            write_rps: 3.5,
            req_kb: 16.0,
            sequentiality: 0.15,
            cpu: 0.12,
            background_cpu: 0.0,
        },
        Phase {
            nominal_s: 4.0,
            read_rps: 10.0,
            write_rps: 1.0,
            req_kb: 16.0,
            sequentiality: 0.15,
            cpu: 0.07,
            background_cpu: 0.0,
        },
    ];
    AppModel::new("web", repeat_cycles(cycle, 36))
        .with_jitter(0.12)
        .iops_only()
}

/// BLAST protein search (NR database, 11 GB): streams database chunks and
/// spends most of its time in alignment compute. CPU-bound with steady
/// moderately-sequential reads.
pub fn blastp() -> AppModel {
    let cycle = vec![Phase {
        nominal_s: 72.0,
        read_rps: 32.0,
        write_rps: 2.0,
        req_kb: 64.0,
        sequentiality: 0.95,
        cpu: 0.97,
        background_cpu: 0.0,
    }];
    AppModel::new("blastp", repeat_cycles(cycle, 5)).with_jitter(0.05)
}

/// Linux 2.6.18 kernel compilation: alternates bursts of small random
/// source reads, compute-heavy compilation, and object-file writes.
/// The burstiness is what defeats the linear interference model.
pub fn compile() -> AppModel {
    let cycle = vec![
        Phase {
            nominal_s: 3.0,
            read_rps: 120.0,
            write_rps: 0.0,
            req_kb: 8.0,
            sequentiality: 0.40,
            cpu: 0.35,
            background_cpu: 0.0,
        },
        Phase {
            nominal_s: 3.0,
            read_rps: 15.0,
            write_rps: 5.0,
            req_kb: 8.0,
            sequentiality: 0.40,
            cpu: 0.85,
            background_cpu: 0.0,
        },
        Phase {
            nominal_s: 2.0,
            read_rps: 10.0,
            write_rps: 105.0,
            req_kb: 16.0,
            sequentiality: 0.50,
            cpu: 0.40,
            background_cpu: 0.0,
        },
    ];
    AppModel::new("compile", repeat_cycles(cycle, 45)).with_jitter(0.18)
}

/// Parsec freqmine: reads the transaction database, then mines frequent
/// itemsets with bursts of random I/O against the FP-tree spill files.
pub fn freqmine() -> AppModel {
    let cycle = vec![
        Phase {
            nominal_s: 3.0,
            read_rps: 330.0,
            write_rps: 20.0,
            req_kb: 16.0,
            sequentiality: 0.80,
            cpu: 0.40,
            background_cpu: 0.0,
        },
        Phase {
            nominal_s: 3.0,
            read_rps: 18.0,
            write_rps: 2.0,
            req_kb: 16.0,
            sequentiality: 0.60,
            cpu: 0.85,
            background_cpu: 0.0,
        },
    ];
    AppModel::new("freqmine", repeat_cycles(cycle, 60)).with_jitter(0.15)
}

/// BLAST nucleotide search (NT database, 12 GB): like blastp but far more
/// I/O intensive — large sequential scans with heavy overlapped compute.
pub fn blastn() -> AppModel {
    let cycle = vec![Phase {
        nominal_s: 72.0,
        read_rps: 225.0,
        write_rps: 5.0,
        req_kb: 256.0,
        sequentiality: 0.90,
        cpu: 0.50,
        background_cpu: 0.0,
    }];
    AppModel::new("blastn", repeat_cycles(cycle, 5)).with_jitter(0.05)
}

/// Parsec dedup: pipelined chunking / hashing / compression of a single
/// large stream, reading the input and writing the compressed archive.
pub fn dedup() -> AppModel {
    let cycle = vec![Phase {
        nominal_s: 40.0,
        read_rps: 200.0,
        write_rps: 85.0,
        req_kb: 128.0,
        sequentiality: 0.85,
        cpu: 0.40,
        background_cpu: 0.0,
    }];
    AppModel::new("dedup", repeat_cycles(cycle, 9)).with_jitter(0.08)
}

/// Parsec x264 encoding of a 1.5 GB stream: the highest-IOPS benchmark —
/// large sequential frame reads plus encoded output writes, with heavy
/// compute overlapped.
pub fn video() -> AppModel {
    let cycle = vec![Phase {
        nominal_s: 45.0,
        read_rps: 280.0,
        write_rps: 65.0,
        req_kb: 128.0,
        sequentiality: 0.90,
        cpu: 0.45,
        background_cpu: 0.0,
    }];
    AppModel::new("video", repeat_cycles(cycle, 8)).with_jitter(0.07)
}

// ---------------------------------------------------------------------------
// Microbenchmarks (Table 1)
// ---------------------------------------------------------------------------

/// `Calc`: the paper's CPU-intensive microbenchmark — pure algorithmic
/// computation, no I/O.
pub fn calc() -> AppModel {
    AppModel::new("calc", vec![Phase::compute(300.0, 1.0)])
}

/// `SeqRead`: the paper's data-intensive microbenchmark — sequentially
/// reads a large file at full device speed with negligible compute.
pub fn seq_read() -> AppModel {
    AppModel::new(
        "seqread",
        vec![Phase {
            nominal_s: 300.0,
            read_rps: 265.0,
            write_rps: 0.0,
            req_kb: 256.0,
            sequentiality: 0.97,
            cpu: 0.06,
            background_cpu: 0.0,
        }],
    )
}

/// `SeqWrite`: sequentially writes a large file (the write-side twin of
/// [`seq_read`]).
pub fn seq_write() -> AppModel {
    AppModel::new(
        "seqwrite",
        vec![Phase {
            nominal_s: 300.0,
            read_rps: 0.0,
            write_rps: 240.0,
            req_kb: 256.0,
            sequentiality: 0.95,
            cpu: 0.07,
            background_cpu: 0.0,
        }],
    )
}

/// `RandRead`: small random reads across a large file — seek-bound, the
/// slowest access pattern on mechanical storage.
pub fn rand_read() -> AppModel {
    AppModel::new(
        "randread",
        vec![Phase {
            nominal_s: 300.0,
            read_rps: 70.0,
            write_rps: 0.0,
            req_kb: 4.0,
            sequentiality: 0.02,
            cpu: 0.04,
            background_cpu: 0.0,
        }],
    )
}

/// `RandWrite`: small random writes across a large file.
pub fn rand_write() -> AppModel {
    AppModel::new(
        "randwrite",
        vec![Phase {
            nominal_s: 300.0,
            read_rps: 0.0,
            write_rps: 65.0,
            req_kb: 4.0,
            sequentiality: 0.02,
            cpu: 0.04,
            background_cpu: 0.0,
        }],
    )
}

// ---------------------------------------------------------------------------
// Synthetic calibration workloads (Section 3.1's 125-point generator)
// ---------------------------------------------------------------------------

/// Peak read rate of the synthetic generator at 100% intensity, req/s.
pub const SYNTH_READ_MAX_RPS: f64 = 300.0;
/// Peak write rate of the synthetic generator at 100% intensity, req/s.
pub const SYNTH_WRITE_MAX_RPS: f64 = 200.0;
/// Request size used by the synthetic generator, KiB.
pub const SYNTH_REQ_KB: f64 = 64.0;
/// Sequentiality of the synthetic generator's file access.
pub const SYNTH_SEQ: f64 = 0.70;

/// Maps a generator intensity level in `[0, 1]` to a fraction of the peak
/// request rate.
///
/// The paper's generator controls intensity "by adjusting the length of
/// sleep interval between each iteration", so the rate is
/// `1 / (service + (1 - level) * sleep_max)` — strongly convex in the
/// level: 25% intensity produces ~6% of the peak rate, 50% ~9%, 75% ~17%,
/// and only 100% (no sleep) reaches the device-bound peak. This matches
/// the paper's Table 1, where the CPU&I/O-*medium* neighbour slows
/// SeqRead by just 1.78x while the *high* one costs 16.11x.
pub fn synthetic_rate_fraction(level: f64) -> f64 {
    assert!((0.0..=1.0).contains(&level), "level {level} out of [0,1]");
    if level <= 0.0 {
        return 0.0;
    }
    const SERVICE_MS: f64 = 3.0;
    const SLEEP_MAX_MS: f64 = 60.0;
    let period_ms = SERVICE_MS + (1.0 - level) * SLEEP_MAX_MS;
    SERVICE_MS / period_ms
}

/// Builds one synthetic background workload with the given intensities in
/// `[0, 1]` (the paper uses the grid {0, 0.25, 0.5, 0.75, 1.0}^3).
///
/// The CPU burn runs concurrently with the I/O loops (it is
/// `background_cpu`, independent of I/O progress); driving the I/O costs a
/// small amount of progress-coupled CPU. The workload is endless — it
/// provides interference for as long as the foreground application runs.
pub fn synthetic(cpu_level: f64, read_level: f64, write_level: f64) -> AppModel {
    for (name, l) in [
        ("cpu", cpu_level),
        ("read", read_level),
        ("write", write_level),
    ] {
        assert!((0.0..=1.0).contains(&l), "{name} level {l} out of [0,1]");
    }
    let read_rps = synthetic_rate_fraction(read_level) * SYNTH_READ_MAX_RPS;
    let write_rps = synthetic_rate_fraction(write_level) * SYNTH_WRITE_MAX_RPS;
    let io_driving_cpu = 0.02 + 0.10 * (read_level + write_level) / 2.0;
    let phase = Phase {
        nominal_s: 10.0,
        read_rps,
        write_rps,
        req_kb: SYNTH_REQ_KB,
        sequentiality: SYNTH_SEQ,
        cpu: if read_rps + write_rps > 0.0 {
            io_driving_cpu
        } else {
            0.0
        },
        background_cpu: cpu_level,
    };
    AppModel::new(
        format!(
            "synthetic(c{:.0},r{:.0},w{:.0})",
            cpu_level * 100.0,
            read_level * 100.0,
            write_level * 100.0
        ),
        vec![phase],
    )
    .endless()
}

/// An idle virtual machine (the "no interference" background).
pub fn idle() -> AppModel {
    AppModel::new("idle", vec![Phase::compute(10.0, 0.0)]).endless()
}

/// The full 5x5x5 calibration grid of Section 3.1 — 125 synthetic
/// background workloads including the idle (0, 0, 0) corner.
pub fn calibration_grid() -> Vec<AppModel> {
    let levels = [0.0, 0.25, 0.5, 0.75, 1.0];
    let mut out = Vec::with_capacity(125);
    for &c in &levels {
        for &r in &levels {
            for &w in &levels {
                out.push(synthetic(c, r, w));
            }
        }
    }
    out
}

/// The Table 1 App2 column workloads: CPU-high, I/O-high, CPU&I/O-medium,
/// CPU&I/O-high.
pub fn table1_backgrounds() -> [(&'static str, AppModel); 4] {
    [
        ("CPU high", synthetic(1.0, 0.0, 0.0)),
        ("I/O high", synthetic(0.0, 1.0, 1.0)),
        ("CPU&I/O medium", synthetic(0.5, 0.5, 0.5)),
        ("CPU&I/O high", synthetic(1.0, 1.0, 1.0)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eight_benchmarks_build() {
        for b in Benchmark::ALL {
            let m = b.model();
            assert!(!m.phases.is_empty());
            assert!(m.nominal_runtime() > 0.0);
            assert_eq!(m.name, b.name());
            assert!(!m.endless);
        }
    }

    #[test]
    fn ranks_roundtrip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_io_rank(b.io_rank()), b);
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(Benchmark::from_name("nosuch"), None);
    }

    #[test]
    fn nominal_iops_respects_table3_ranks() {
        // The benchmarks' uncontended IOPS must be strictly ordered by
        // their Table 3 ranks — the experiments' light/medium/heavy mixes
        // depend on this ordering.
        let mut prev = -1.0;
        for b in Benchmark::ALL {
            let iops = b.model().nominal_iops();
            assert!(
                iops > prev,
                "{} nominal IOPS {iops} not above previous rank's {prev}",
                b.name()
            );
            prev = iops;
        }
    }

    #[test]
    fn web_is_iops_only() {
        assert!(!web().runtime_meaningful);
        assert!(email().runtime_meaningful);
    }

    #[test]
    fn calibration_grid_has_125_workloads() {
        let grid = calibration_grid();
        assert_eq!(grid.len(), 125);
        assert!(grid.iter().all(|w| w.endless));
        // The (0,0,0) corner is effectively idle.
        let idle_corner = &grid[0];
        assert!(idle_corner.phases[0].io_rps() < 1e-9);
        assert!(idle_corner.phases[0].background_cpu < 1e-9);
    }

    #[test]
    fn synthetic_levels_map_to_rates() {
        let w = synthetic(0.5, 1.0, 0.25);
        let p = &w.phases[0];
        assert!((p.background_cpu - 0.5).abs() < 1e-12);
        // 100% intensity has no sleep: peak rate.
        assert!((p.read_rps - SYNTH_READ_MAX_RPS).abs() < 1e-12);
        // 25% intensity sleeps 45 ms per 3 ms of service: ~6% of peak.
        let want = synthetic_rate_fraction(0.25) * SYNTH_WRITE_MAX_RPS;
        assert!((p.write_rps - want).abs() < 1e-12);
        assert!(w.endless);
    }

    #[test]
    fn synthetic_rate_fraction_is_convex_and_monotone() {
        assert_eq!(synthetic_rate_fraction(0.0), 0.0);
        assert!((synthetic_rate_fraction(1.0) - 1.0).abs() < 1e-12);
        let f25 = synthetic_rate_fraction(0.25);
        let f50 = synthetic_rate_fraction(0.5);
        let f75 = synthetic_rate_fraction(0.75);
        assert!(f25 < f50 && f50 < f75 && f75 < 1.0);
        // Sleep-loop behaviour: 50% intensity is far below 50% of peak.
        assert!(f50 < 0.25, "f50 = {f50}");
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn synthetic_rejects_bad_level() {
        synthetic(1.5, 0.0, 0.0);
    }

    #[test]
    fn microbenchmarks() {
        let c = calc();
        assert!(c.phases[0].is_compute_only());
        assert!((c.phases[0].cpu - 1.0).abs() < 1e-12);
        let s = seq_read();
        assert!(s.phases[0].read_rps > 200.0);
        assert!(s.phases[0].sequentiality > 0.9);
        let w = seq_write();
        assert!(w.phases[0].write_rps > 200.0 && w.phases[0].read_rps == 0.0);
        let rr = rand_read();
        assert!(rr.phases[0].sequentiality < 0.1 && rr.phases[0].req_kb <= 8.0);
        let rw = rand_write();
        assert!(rw.phases[0].write_rps > 0.0 && rw.phases[0].read_rps == 0.0);
    }

    #[test]
    fn random_io_is_seek_bound_on_disk() {
        use crate::config::HostConfig;
        use crate::engine::Engine;
        let e = Engine::new(HostConfig::testbed());
        // Random reads achieve far lower IOPS than sequential reads.
        let seq = e.solo_run(&seq_read().time_scaled(0.2), 1).iops[0];
        let rnd = e.solo_run(&rand_read().time_scaled(0.2), 1).iops[0];
        assert!(rnd < seq / 2.0, "rand {rnd} vs seq {seq}");
    }

    #[test]
    fn table1_backgrounds_shapes() {
        let bgs = table1_backgrounds();
        assert_eq!(bgs.len(), 4);
        // CPU high: all CPU, no I/O.
        assert!(bgs[0].1.phases[0].io_rps() < 1e-9);
        assert!((bgs[0].1.phases[0].background_cpu - 1.0).abs() < 1e-12);
        // I/O high: no background CPU burn, maximal I/O.
        assert!(bgs[1].1.phases[0].background_cpu < 1e-12);
        assert!(bgs[1].1.phases[0].io_rps() > 400.0);
    }
}
