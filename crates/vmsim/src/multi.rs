//! N-guest co-run engine: the generalization of [`crate::engine::Engine`]
//! beyond the paper's two-VM-per-machine simplification.
//!
//! The fluid model is unchanged — application progress rates determine
//! CPU and I/O demands; the credit scheduler and the disk allocate
//! capacity; allocations bound the rates — but the fixed point now spans
//! an arbitrary number of guest domains sharing one host. This backs the
//! consolidation-density extension experiment and validates the
//! data-center simulator's dominant-neighbour approximation for machines
//! with more than two VM slots.

use crate::app::{AppModel, Phase};
use crate::config::HostConfig;
use crate::cpu::fair_share;
use crate::disk::{Disk, IoDemand};
use crate::engine::VmObservation;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Outcome of an N-guest co-run.
#[derive(Debug, Clone)]
pub struct MultiRunOutcome {
    /// Whether each application ran to completion.
    pub finished: Vec<bool>,
    /// Wall-clock runtime of each application, seconds.
    pub runtime: Vec<f64>,
    /// Average served IOPS of each application over its active time.
    pub iops: Vec<f64>,
    /// Average observed characteristics per VM.
    pub observed: Vec<VmObservation>,
    /// Average total Dom0 CPU utilization over the run.
    pub dom0_total: f64,
}

struct GuestState {
    phases: Vec<Phase>,
    endless: bool,
    jitter: f64,
    phase_idx: usize,
    phase_progress: f64,
    current: Phase,
    done: bool,
    active_time: f64,
    reads_served: f64,
    writes_served: f64,
    cpu_seconds: f64,
    dom0_seconds: f64,
}

impl GuestState {
    fn new(app: &AppModel, rng: &mut StdRng) -> Self {
        let mut s = GuestState {
            phases: app.phases.clone(),
            endless: app.endless,
            jitter: app.jitter,
            phase_idx: 0,
            phase_progress: 0.0,
            current: app.phases[0],
            done: false,
            active_time: 0.0,
            reads_served: 0.0,
            writes_served: 0.0,
            cpu_seconds: 0.0,
            dom0_seconds: 0.0,
        };
        s.current = s.jittered(s.phases[0], rng);
        s
    }

    fn jittered(&self, base: Phase, rng: &mut StdRng) -> Phase {
        if self.jitter <= 0.0 {
            return base;
        }
        let draw = |rng: &mut StdRng| -> f64 {
            (1.0 + tracon_stats::dist::normal(rng, 0.0, self.jitter)).max(0.1)
        };
        Phase {
            nominal_s: base.nominal_s * draw(rng),
            read_rps: base.read_rps * draw(rng),
            write_rps: base.write_rps * draw(rng),
            cpu: base.cpu * draw(rng),
            ..base
        }
    }

    fn advance(&mut self, progress_s: f64, rng: &mut StdRng) -> bool {
        if self.done {
            return true;
        }
        self.phase_progress += progress_s;
        while self.phase_progress >= self.current.nominal_s - 1e-12 {
            self.phase_progress -= self.current.nominal_s;
            self.phase_idx += 1;
            if self.phase_idx >= self.phases.len() {
                if self.endless {
                    self.phase_idx = 0;
                } else {
                    self.done = true;
                    return true;
                }
            }
            self.current = self.jittered(self.phases[self.phase_idx], rng);
        }
        false
    }
}

/// The N-guest engine.
#[derive(Debug, Clone)]
pub struct MultiEngine {
    cfg: HostConfig,
    disk: Disk,
}

impl MultiEngine {
    /// Creates an engine for the given host configuration.
    pub fn new(cfg: HostConfig) -> Self {
        let disk = Disk::new(cfg.disk);
        MultiEngine { cfg, disk }
    }

    /// Co-runs `apps` (one per guest VM) from t = 0 until every finite
    /// application completes.
    ///
    /// # Panics
    /// Panics when `apps` is empty, when every application is endless, or
    /// if the simulation exceeds `max_sim_time`.
    pub fn run(&self, apps: &[AppModel], seed: u64) -> MultiRunOutcome {
        assert!(!apps.is_empty(), "no applications given");
        assert!(
            apps.iter().any(|a| !a.endless),
            "at least one application must terminate"
        );
        let n = apps.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut guests: Vec<GuestState> =
            apps.iter().map(|a| GuestState::new(a, &mut rng)).collect();
        let mut t = 0.0f64;
        let mut runtime = vec![0.0f64; n];
        let mut dom0_total_seconds = 0.0f64;
        let mut rates = vec![1.0f64; n];

        while guests.iter().any(|g| !g.done && !g.endless) {
            assert!(
                t < self.cfg.max_sim_time,
                "multi-run exceeded max_sim_time={}s",
                self.cfg.max_sim_time
            );
            let step = self.solve_step(&guests, &mut rates);

            let mut dt = self.cfg.dt_max;
            for (g, r) in guests.iter().zip(&rates) {
                if g.done || *r <= 1e-9 {
                    continue;
                }
                let remaining = (g.current.nominal_s - g.phase_progress).max(1e-9);
                dt = dt.min(remaining / r);
            }

            for i in 0..n {
                if guests[i].done {
                    continue;
                }
                let r = rates[i];
                let ph = guests[i].current;
                guests[i].reads_served += r * ph.read_rps * dt;
                guests[i].writes_served += r * ph.write_rps * dt;
                guests[i].cpu_seconds += step.cpu_alloc[i] * dt;
                guests[i].dom0_seconds += step.dom0_attrib[i] * dt;
                guests[i].active_time += dt;
                let finished = guests[i].advance(r * dt, &mut rng);
                if finished && runtime[i] == 0.0 {
                    runtime[i] = t + dt;
                }
            }
            dom0_total_seconds += step.dom0_used * dt;
            t += dt;
        }

        let mut observed = Vec::with_capacity(n);
        let mut iops = vec![0.0f64; n];
        let mut finished = vec![false; n];
        for i in 0..n {
            let at = guests[i].active_time.max(1e-9);
            observed.push(VmObservation {
                read_rps: guests[i].reads_served / at,
                write_rps: guests[i].writes_served / at,
                cpu_util: guests[i].cpu_seconds / at,
                dom0_util: guests[i].dom0_seconds / at,
            });
            iops[i] = (guests[i].reads_served + guests[i].writes_served) / at;
            finished[i] = guests[i].done;
            if runtime[i] == 0.0 {
                runtime[i] = t;
            }
        }

        MultiRunOutcome {
            finished,
            runtime,
            iops,
            observed,
            dom0_total: dom0_total_seconds / t.max(1e-9),
        }
    }

    fn solve_step(&self, guests: &[GuestState], rates: &mut [f64]) -> StepAllocation {
        let n = guests.len();
        let mut r: Vec<f64> = guests
            .iter()
            .zip(rates.iter())
            .map(|(g, &prev)| if g.done { 0.0 } else { prev.max(0.5) })
            .collect();
        let mut out = StepAllocation {
            cpu_alloc: vec![0.0; n],
            dom0_used: 0.0,
            dom0_attrib: vec![0.0; n],
        };

        let full_demand: Vec<f64> = guests
            .iter()
            .map(|g| {
                if g.done {
                    0.0
                } else {
                    (g.current.background_cpu + g.current.cpu).min(1.0)
                }
            })
            .collect();
        let mut weights = vec![self.cfg.guest_weight; n + 1];
        weights[0] = self.cfg.dom0_weight;

        for _ in 0..32 {
            let total_io_rps: f64 = guests
                .iter()
                .zip(&r)
                .map(|(g, &ri)| if g.done { 0.0 } else { ri * g.current.io_rps() })
                .sum();
            let dom0_demand = self.cfg.dom0_base_cpu + total_io_rps * self.cfg.dom0_cost_per_req_s;

            let mut demands_full = Vec::with_capacity(n + 1);
            demands_full.push(dom0_demand);
            demands_full.extend_from_slice(&full_demand);
            let alloc_full = fair_share(self.cfg.cpu_capacity, &demands_full, &weights);

            let cpu_actual: Vec<f64> = guests
                .iter()
                .zip(&r)
                .map(|(g, &ri)| {
                    if g.done {
                        0.0
                    } else {
                        (g.current.background_cpu + ri * g.current.cpu).min(1.0)
                    }
                })
                .collect();
            let mut demands_actual = Vec::with_capacity(n + 1);
            demands_actual.push(dom0_demand);
            demands_actual.extend_from_slice(&cpu_actual);
            let alloc = fair_share(self.cfg.cpu_capacity, &demands_actual, &weights);
            let dom0_alloc = alloc[0];

            let dom0_needed = dom0_demand.max(1e-9);
            let starvation = (dom0_alloc / dom0_needed).clamp(0.0, 1.0);
            let total_demand = dom0_demand + cpu_actual.iter().sum::<f64>();
            let saturation = ((total_demand - 0.9 * self.cfg.cpu_capacity)
                / (0.15 * self.cfg.cpu_capacity))
                .clamp(0.0, 1.0);
            let streaming = guests
                .iter()
                .filter(|g| !g.done && g.current.io_rps() > 1e-9)
                .count();
            let latency_penalty = if streaming >= 2 {
                1.0 / (1.0 + self.cfg.dom0_latency_gamma * saturation)
            } else {
                1.0
            };
            let path_eff = (starvation * latency_penalty).clamp(1e-6, 1.0);

            let r_cpu: Vec<f64> = guests
                .iter()
                .enumerate()
                .map(|(i, g)| {
                    if g.done {
                        0.0
                    } else if g.current.cpu > 1e-12 {
                        (alloc_full[i + 1] / g.current.cpu).min(1.0)
                    } else {
                        1.0
                    }
                })
                .collect();

            let demands: Vec<IoDemand> = guests
                .iter()
                .zip(&r_cpu)
                .map(|(g, &rc)| {
                    if g.done {
                        IoDemand::default()
                    } else {
                        IoDemand {
                            read_rps: rc * g.current.read_rps,
                            write_rps: rc * g.current.write_rps,
                            req_kb: g.current.req_kb,
                            sequentiality: g.current.sequentiality,
                        }
                    }
                })
                .collect();
            let disk_alloc = self.disk.allocate(&demands, path_eff);

            let mut max_delta = 0.0f64;
            for i in 0..n {
                if guests[i].done {
                    r[i] = 0.0;
                    continue;
                }
                let g = &guests[i];
                let new_r = if g.current.io_rps() > 1e-12 {
                    (r_cpu[i] * disk_alloc.fractions[i]).clamp(0.0, 1.0)
                } else {
                    r_cpu[i]
                };
                let damped = 0.5 * r[i] + 0.5 * new_r;
                max_delta = max_delta.max((damped - r[i]).abs());
                r[i] = damped;
            }

            let served_rps: Vec<f64> = guests
                .iter()
                .zip(&r)
                .map(|(g, &ri)| if g.done { 0.0 } else { ri * g.current.io_rps() })
                .collect();
            let total_served: f64 = served_rps.iter().sum();
            let dom0_used = (self.cfg.dom0_base_cpu + total_served * self.cfg.dom0_cost_per_req_s)
                .min(dom0_alloc.max(self.cfg.dom0_base_cpu));
            let dom0_io = (dom0_used - self.cfg.dom0_base_cpu).max(0.0);
            out = StepAllocation {
                cpu_alloc: guests
                    .iter()
                    .enumerate()
                    .map(|(i, g)| {
                        if g.done {
                            0.0
                        } else {
                            let coupled = (r[i] * g.current.cpu).min(alloc[i + 1]);
                            let bg = g.current.background_cpu.min(alloc[i + 1] - coupled);
                            coupled + bg
                        }
                    })
                    .collect(),
                dom0_used,
                dom0_attrib: served_rps
                    .iter()
                    .map(|&s| {
                        if total_served > 1e-9 {
                            dom0_io * s / total_served
                        } else {
                            0.0
                        }
                    })
                    .collect(),
            };

            if max_delta < 1e-4 {
                break;
            }
        }

        rates.copy_from_slice(&r);
        out
    }
}

struct StepAllocation {
    cpu_alloc: Vec<f64>,
    dom0_used: f64,
    dom0_attrib: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;
    use crate::engine::Engine;

    fn multi() -> MultiEngine {
        MultiEngine::new(HostConfig::testbed())
    }

    #[test]
    fn two_guests_match_pair_engine() {
        // The N-guest engine must agree with the calibrated two-VM engine
        // (same model, same RNG draw order) within tight tolerance.
        let pair = Engine::new(HostConfig::testbed());
        for (a, b) in [
            (apps::calc(), apps::calc()),
            (apps::seq_read(), apps::synthetic(0.0, 1.0, 1.0)),
            (
                apps::Benchmark::Video.model().time_scaled(0.1),
                apps::Benchmark::Dedup.model().time_scaled(0.1),
            ),
        ] {
            let p = pair.co_run(&a, &b, 11);
            let m = multi().run(&[a.clone(), b.clone()], 11);
            for i in 0..2 {
                let rel = (p.runtime[i] - m.runtime[i]).abs() / p.runtime[i];
                assert!(
                    rel < 0.02,
                    "{} runtime mismatch: pair {} vs multi {}",
                    [&a.name, &b.name][i],
                    p.runtime[i],
                    m.runtime[i]
                );
            }
        }
    }

    #[test]
    fn three_cpu_guests_share_a_core() {
        let calc = apps::calc();
        let out = multi().run(&[calc.clone(), calc.clone(), calc.clone()], 1);
        let solo = Engine::new(HostConfig::testbed())
            .solo_run(&calc, 1)
            .runtime[0];
        for rt in &out.runtime {
            let slowdown = rt / solo;
            assert!(
                (2.8..3.3).contains(&slowdown),
                "three-way CPU sharing should triple runtime: {slowdown}"
            );
        }
    }

    #[test]
    fn interference_grows_with_density() {
        // video co-located with one vs two I/O-heavy neighbours.
        let video = apps::Benchmark::Video.model().time_scaled(0.1);
        let dedup = apps::Benchmark::Dedup.model().time_scaled(0.1);
        let solo = Engine::new(HostConfig::testbed())
            .solo_run(&video, 2)
            .runtime[0];
        let two = multi().run(&[video.clone(), dedup.clone()], 2).runtime[0];
        let three = multi()
            .run(&[video.clone(), dedup.clone(), dedup], 2)
            .runtime[0];
        assert!(two > solo * 1.5, "two-way: {two} vs solo {solo}");
        assert!(
            three > two * 1.1,
            "three-way {three} must exceed two-way {two}"
        );
    }

    #[test]
    fn light_neighbours_stay_protected_at_density() {
        // email next to three I/O-heavy guests: the fair-share disk keeps
        // its tiny demand served, so it suffers far less than the heavies.
        let email = apps::Benchmark::Email.model().time_scaled(0.1);
        let video = apps::Benchmark::Video.model().time_scaled(0.1);
        let solo = Engine::new(HostConfig::testbed())
            .solo_run(&email, 3)
            .runtime[0];
        let out = multi().run(&[email.clone(), video.clone(), video.clone(), video], 3);
        let email_slowdown = out.runtime[0] / solo;
        assert!(
            email_slowdown < 2.5,
            "email should stay protected: {email_slowdown}x"
        );
    }

    #[test]
    #[should_panic(expected = "at least one application must terminate")]
    fn all_endless_panics() {
        multi().run(&[apps::idle(), apps::idle()], 1);
    }

    #[test]
    fn deterministic() {
        let a = apps::Benchmark::Compile.model().time_scaled(0.1);
        let b = apps::Benchmark::Web.model().time_scaled(0.1);
        let c = apps::Benchmark::Email.model().time_scaled(0.1);
        let r1 = multi().run(&[a.clone(), b.clone(), c.clone()], 9);
        let r2 = multi().run(&[a, b, c], 9);
        assert_eq!(r1.runtime[0].to_bits(), r2.runtime[0].to_bits());
        assert_eq!(r1.iops[2].to_bits(), r2.iops[2].to_bits());
    }
}
