//! Fluid-rate model of a shared (mechanical) storage device behind a
//! Xen-style driver domain.
//!
//! The model captures the three effects that dominate I/O interference for
//! data-intensive applications on rotating media:
//!
//! 1. **Per-request service time**: transfer time at sequential bandwidth
//!    plus a seek penalty paid with probability `1 - effective
//!    sequentiality`, plus fixed per-request overhead (where iSCSI's
//!    network round trip lands).
//! 2. **Stream mixing**: concurrent streams destroy each other's
//!    sequentiality — the head must move between the streams' file
//!    extents, so each stream's effective sequentiality shrinks as
//!    `seq / (1 + mix_degradation * (n_active - 1))`. This is the source
//!    of the ~10x collision of two sequential readers in Table 1.
//! 3. **Driver-domain throttling**: all requests funnel through Dom0,
//!    which needs CPU to post and complete them; when Dom0 is starved or
//!    the host CPU is saturated, the I/O path slows down further (the
//!    16.11x cell of Table 1).

use crate::config::DiskParams;

/// One VM's aggregate I/O demand during a simulation step.
#[derive(Debug, Clone, Copy, Default)]
pub struct IoDemand {
    /// Requested read rate, requests per second.
    pub read_rps: f64,
    /// Requested write rate, requests per second.
    pub write_rps: f64,
    /// Request size in KiB.
    pub req_kb: f64,
    /// Stream sequentiality in `[0, 1]` when running alone.
    pub sequentiality: f64,
}

impl IoDemand {
    /// Total requested requests per second.
    pub fn total_rps(&self) -> f64 {
        self.read_rps + self.write_rps
    }

    /// True when the demand is effectively zero.
    pub fn is_idle(&self) -> bool {
        self.total_rps() < 1e-9
    }
}

/// Result of one disk allocation round: the fraction of each VM's requested
/// rate that the device can actually serve this step.
#[derive(Debug, Clone)]
pub struct DiskAllocation {
    /// Per-VM service fraction in `[0, 1]`: served = requested * fraction.
    pub fractions: Vec<f64>,
    /// Device utilization implied by the requested rates (1.0 = saturated).
    pub requested_utilization: f64,
    /// Mean service time per request per VM, seconds (0 for idle VMs).
    pub service_times: Vec<f64>,
}

/// Shared-disk allocator.
#[derive(Debug, Clone)]
pub struct Disk {
    params: DiskParams,
}

impl Disk {
    /// Creates a disk with the given parameters.
    pub fn new(params: DiskParams) -> Self {
        Disk { params }
    }

    /// Device parameters.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Mean service time (seconds) for one request of a stream with the
    /// given size and *effective* sequentiality.
    pub fn service_time_s(&self, req_kb: f64, effective_seq: f64) -> f64 {
        let transfer_s = (req_kb / 1024.0) / self.params.seq_bandwidth_mb;
        let seek_s = self.params.seek_ms / 1e3 * (1.0 - effective_seq.clamp(0.0, 1.0));
        let overhead_s = self.params.per_req_overhead_ms / 1e3;
        transfer_s + seek_s + overhead_s
    }

    /// Effective sequentiality of a stream issuing `own_rps` requests per
    /// second while the device serves `total_rps` in aggregate.
    ///
    /// A sequential run only survives while consecutive device requests
    /// come from the same stream; with interleaving, the probability that
    /// the head is still positioned for this stream decays with the
    /// stream's share of the request mix. `mix_degradation` is the decay
    /// exponent: `seq_eff = seq * share^mix_degradation`.
    pub fn effective_sequentiality(&self, seq: f64, own_rps: f64, total_rps: f64) -> f64 {
        let seq = seq.clamp(0.0, 1.0);
        if total_rps <= own_rps + 1e-9 || own_rps <= 0.0 {
            return seq;
        }
        let share = (own_rps / total_rps).clamp(0.0, 1.0);
        seq * share.powf(self.params.mix_degradation)
    }

    /// Allocates device capacity among the VMs' demands.
    ///
    /// `path_efficiency` in `(0, 1]` scales the device's usable capacity to
    /// account for driver-domain CPU starvation (computed by the engine
    /// from the host's CPU state). Service is **max-min fair by
    /// utilization** — what a fair per-guest I/O scheduler (CFQ in Dom0)
    /// provides: a small stream whose device-time demand fits inside its
    /// fair share is served in full, and only the streams exceeding their
    /// share are throttled. Note the asymmetry this creates: a small
    /// stream still *degrades* a big sequential stream (it destroys the
    /// big stream's sequentiality and occupies device time) while being
    /// largely protected itself — exactly the behaviour behind Table 1's
    /// SeqRead column.
    pub fn allocate(&self, demands: &[IoDemand], path_efficiency: f64) -> DiskAllocation {
        let eff = path_efficiency.clamp(1e-6, 1.0);
        let total_rps: f64 = demands.iter().map(|d| d.total_rps()).sum();
        let mut service_times = vec![0.0; demands.len()];
        let mut utilizations = vec![0.0; demands.len()];
        let mut requested_utilization = 0.0;
        for (i, d) in demands.iter().enumerate() {
            if d.is_idle() {
                continue;
            }
            let eseq = self.effective_sequentiality(d.sequentiality, d.total_rps(), total_rps);
            let st = self.service_time_s(d.req_kb, eseq);
            service_times[i] = st;
            utilizations[i] = d.total_rps() * st;
            requested_utilization += utilizations[i];
        }
        // Max-min fair device-time allocation.
        let weights = vec![1.0; demands.len()];
        let granted = crate::cpu::fair_share(eff, &utilizations, &weights);
        // Absolute IOPS cap (controller limit / iSCSI target cap), applied
        // as a uniform scale on top of the fair allocation.
        let iops_frac = if total_rps > self.params.iops_cap {
            self.params.iops_cap / total_rps
        } else {
            1.0
        };
        let fractions = demands
            .iter()
            .enumerate()
            .map(|(i, d)| {
                if d.is_idle() {
                    1.0
                } else {
                    (granted[i] / utilizations[i].max(1e-12)).min(1.0) * iops_frac
                }
            })
            .collect();
        DiskAllocation {
            fractions,
            requested_utilization,
            service_times,
        }
    }

    /// Convenience: the standalone throughput (requests/s) of a single
    /// stream with the given shape, assuming a healthy I/O path.
    pub fn solo_rps(&self, req_kb: f64, sequentiality: f64) -> f64 {
        let st = self.service_time_s(req_kb, sequentiality.clamp(0.0, 1.0));
        (1.0 / st).min(self.params.iops_cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiskParams;

    fn disk() -> Disk {
        Disk::new(DiskParams::local_sata())
    }

    #[test]
    fn sequential_solo_throughput_near_bandwidth() {
        let d = disk();
        // 256 KiB sequential requests at seq = 0.97.
        let rps = d.solo_rps(256.0, 0.97);
        let mbps = rps * 256.0 / 1024.0;
        // A nearly-sequential stream should reach a large fraction of the
        // device bandwidth (seeks on 3% of requests cost some).
        assert!(mbps > 55.0 && mbps <= 100.0, "mbps = {mbps}");
    }

    #[test]
    fn random_solo_throughput_is_seek_bound() {
        let d = disk();
        // 4 KiB fully random requests: ~1/11ms ≈ 90 IOPS.
        let rps = d.solo_rps(4.0, 0.0);
        assert!(rps > 60.0 && rps < 120.0, "rps = {rps}");
    }

    #[test]
    fn two_sequential_streams_collapse() {
        // The Table 1 SeqRead vs SeqRead scenario: per-stream throughput
        // should drop by roughly an order of magnitude.
        let d = disk();
        let solo = d.solo_rps(256.0, 0.97);
        let demand = IoDemand {
            read_rps: solo,
            write_rps: 0.0,
            req_kb: 256.0,
            sequentiality: 0.97,
        };
        let alloc = d.allocate(&[demand, demand], 1.0);
        let per_stream = solo * alloc.fractions[0];
        let slowdown = solo / per_stream;
        assert!(
            (6.0..16.0).contains(&slowdown),
            "slowdown = {slowdown}, per_stream = {per_stream}"
        );
    }

    #[test]
    fn idle_neighbour_causes_no_degradation() {
        let d = disk();
        let solo = d.solo_rps(256.0, 0.97);
        let demand = IoDemand {
            read_rps: solo,
            write_rps: 0.0,
            req_kb: 256.0,
            sequentiality: 0.97,
        };
        let idle = IoDemand::default();
        let alloc = d.allocate(&[demand, idle], 1.0);
        assert!((alloc.fractions[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn path_efficiency_scales_service() {
        let d = disk();
        let solo = d.solo_rps(256.0, 0.97);
        let demand = IoDemand {
            read_rps: solo,
            write_rps: 0.0,
            req_kb: 256.0,
            sequentiality: 0.97,
        };
        let healthy = d.allocate(&[demand], 1.0);
        let starved = d.allocate(&[demand], 0.5);
        assert!((healthy.fractions[0] - 1.0).abs() < 1e-6);
        assert!(
            (starved.fractions[0] - 0.5).abs() < 0.02,
            "frac = {}",
            starved.fractions[0]
        );
    }

    #[test]
    fn iops_cap_enforced() {
        let d = disk();
        // Tiny requests, fully sequential: service time is overhead-bound,
        // so only the IOPS cap limits the rate.
        let demand = IoDemand {
            read_rps: 100_000.0,
            write_rps: 0.0,
            req_kb: 0.5,
            sequentiality: 1.0,
        };
        let alloc = d.allocate(&[demand], 1.0);
        let served = demand.total_rps() * alloc.fractions[0];
        assert!(served <= d.params().iops_cap * 1.001, "served = {served}");
    }

    #[test]
    fn under_demand_fully_served() {
        let d = disk();
        let demand = IoDemand {
            read_rps: 10.0,
            write_rps: 5.0,
            req_kb: 64.0,
            sequentiality: 0.5,
        };
        let alloc = d.allocate(&[demand, IoDemand::default()], 1.0);
        assert!((alloc.fractions[0] - 1.0).abs() < 1e-9);
        assert!(alloc.requested_utilization < 1.0);
    }

    #[test]
    fn iscsi_slower_than_local() {
        let local = disk();
        let remote = Disk::new(DiskParams::iscsi());
        assert!(remote.solo_rps(256.0, 0.97) < local.solo_rps(256.0, 0.97));
        assert!(remote.solo_rps(4.0, 0.0) < local.solo_rps(4.0, 0.0));
    }

    #[test]
    fn effective_sequentiality_decays_with_competitor_share() {
        let d = disk();
        let alone = d.effective_sequentiality(0.9, 100.0, 100.0);
        let light = d.effective_sequentiality(0.9, 100.0, 150.0);
        let heavy = d.effective_sequentiality(0.9, 100.0, 500.0);
        assert_eq!(alone, 0.9);
        assert!(
            light < alone && heavy < light,
            "alone={alone} light={light} heavy={heavy}"
        );
        // Idle stream is untouched.
        assert_eq!(d.effective_sequentiality(0.9, 0.0, 500.0), 0.9);
    }

    #[test]
    fn mixed_read_write_demand_counts_both() {
        let d = disk();
        let demand = IoDemand {
            read_rps: 50.0,
            write_rps: 50.0,
            req_kb: 64.0,
            sequentiality: 0.5,
        };
        assert!((demand.total_rps() - 100.0).abs() < 1e-12);
        assert!(!demand.is_idle());
        assert!(IoDemand::default().is_idle());
        // Reads and writes count identically toward device time.
        let alloc = d.allocate(&[demand], 1.0);
        assert!(alloc.requested_utilization > 0.0);
    }
}
