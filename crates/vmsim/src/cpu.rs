//! Fluid-rate model of the Xen credit scheduler.
//!
//! The credit scheduler is, at steady state, a weighted max-min fair
//! allocator: every runnable vCPU receives CPU time proportional to its
//! weight, and capacity a domain does not use is redistributed to the
//! others (work conservation). The classic progressive-filling algorithm
//! computes exactly this allocation for a set of demands and weights.

/// Computes the weighted max-min fair allocation of `capacity` among
/// consumers with the given `demands` and `weights`.
///
/// Properties:
/// * no consumer receives more than its demand,
/// * total allocation never exceeds `capacity`,
/// * when the system is overloaded, unsatisfied consumers receive shares
///   proportional to their weights (work-conserving redistribution of the
///   capacity left by satisfied consumers).
///
/// # Panics
/// Panics when the slices differ in length, or any demand/weight is
/// negative or non-finite.
pub fn fair_share(capacity: f64, demands: &[f64], weights: &[f64]) -> Vec<f64> {
    assert_eq!(
        demands.len(),
        weights.len(),
        "demands/weights length mismatch"
    );
    assert!(
        capacity >= 0.0 && capacity.is_finite(),
        "bad capacity {capacity}"
    );
    for (&d, &w) in demands.iter().zip(weights) {
        assert!(d >= 0.0 && d.is_finite(), "bad demand {d}");
        assert!(w >= 0.0 && w.is_finite(), "bad weight {w}");
    }
    let n = demands.len();
    let mut alloc = vec![0.0; n];
    let mut satisfied = vec![false; n];
    let mut remaining = capacity;

    // Progressive filling: raise the fair level until either everyone is
    // satisfied or the capacity runs out. At most n rounds.
    for _ in 0..n {
        let active_weight: f64 = (0..n)
            .filter(|&i| !satisfied[i] && demands[i] > alloc[i])
            .map(|i| weights[i])
            .sum();
        if active_weight <= 0.0 || remaining <= 1e-15 {
            break;
        }
        // Tentatively hand each active consumer its weighted share of the
        // remaining capacity; consumers whose demand is below the share
        // are capped and their surplus is re-distributed next round.
        let mut next_remaining = remaining;
        let mut progressed = false;
        for i in 0..n {
            if satisfied[i] || demands[i] <= alloc[i] {
                satisfied[i] = true;
                continue;
            }
            let share = remaining * weights[i] / active_weight;
            let need = demands[i] - alloc[i];
            if need <= share {
                alloc[i] = demands[i];
                satisfied[i] = true;
                next_remaining -= need;
                progressed = true;
            }
        }
        if !progressed {
            // Nobody was capped this round: distribute the remainder
            // proportionally and finish.
            for i in 0..n {
                if !satisfied[i] {
                    alloc[i] += remaining * weights[i] / active_weight;
                }
            }
            next_remaining = 0.0;
        }
        remaining = next_remaining.max(0.0);
        if remaining <= 1e-15 {
            break;
        }
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;

    const EQ: f64 = 1e-12;

    fn total(a: &[f64]) -> f64 {
        a.iter().sum()
    }

    #[test]
    fn underloaded_everyone_satisfied() {
        let a = fair_share(2.0, &[0.5, 0.3, 0.1], &[1.0, 1.0, 1.0]);
        assert!((a[0] - 0.5).abs() < EQ);
        assert!((a[1] - 0.3).abs() < EQ);
        assert!((a[2] - 0.1).abs() < EQ);
    }

    #[test]
    fn overloaded_equal_weights_split_evenly() {
        let a = fair_share(1.0, &[1.0, 1.0], &[1.0, 1.0]);
        assert!((a[0] - 0.5).abs() < EQ);
        assert!((a[1] - 0.5).abs() < EQ);
    }

    #[test]
    fn small_demand_surplus_redistributed() {
        // Consumer 2 only wants 0.1; the other two split the rest evenly.
        let a = fair_share(1.0, &[1.0, 1.0, 0.1], &[1.0, 1.0, 1.0]);
        assert!((a[2] - 0.1).abs() < EQ);
        assert!((a[0] - 0.45).abs() < EQ);
        assert!((a[1] - 0.45).abs() < EQ);
        assert!((total(&a) - 1.0).abs() < EQ);
    }

    #[test]
    fn weighted_split() {
        // Weight 2:1 -> allocation 2:1 when both are unsatisfied.
        let a = fair_share(0.9, &[1.0, 1.0], &[2.0, 1.0]);
        assert!((a[0] - 0.6).abs() < EQ);
        assert!((a[1] - 0.3).abs() < EQ);
    }

    #[test]
    fn weighted_with_cap() {
        // Heavy-weight consumer only needs 0.2; light one takes the rest.
        let a = fair_share(1.0, &[0.2, 5.0], &[10.0, 1.0]);
        assert!((a[0] - 0.2).abs() < EQ);
        assert!((a[1] - 0.8).abs() < EQ);
    }

    #[test]
    fn never_exceeds_capacity_or_demand() {
        let demands = [0.7, 0.4, 1.2, 0.0, 0.05];
        let weights = [1.0, 2.0, 0.5, 1.0, 3.0];
        for &cap in &[0.0, 0.3, 1.0, 2.0, 5.0] {
            let a = fair_share(cap, &demands, &weights);
            assert!(total(&a) <= cap + 1e-9, "cap={cap} total={}", total(&a));
            for (x, d) in a.iter().zip(&demands) {
                assert!(*x <= d + 1e-9);
                assert!(*x >= 0.0);
            }
        }
    }

    #[test]
    fn zero_capacity_gives_zero() {
        let a = fair_share(0.0, &[1.0, 2.0], &[1.0, 1.0]);
        assert_eq!(a, vec![0.0, 0.0]);
    }

    #[test]
    fn zero_weight_consumer_starves_under_load() {
        let a = fair_share(1.0, &[1.0, 1.0], &[1.0, 0.0]);
        assert!((a[0] - 1.0).abs() < EQ);
        assert!(a[1].abs() < EQ);
    }

    #[test]
    fn empty_input() {
        let a = fair_share(1.0, &[], &[]);
        assert!(a.is_empty());
    }

    #[test]
    fn table1_cpu_doubling_scenario() {
        // Two CPU-saturating guests plus a nearly idle Dom0 on one core:
        // each guest gets ~0.5 -> runtime doubles (Table 1, Calc/CPU-high).
        let a = fair_share(1.0, &[1.0, 1.0, 0.005], &[256.0, 256.0, 256.0]);
        assert!((a[0] - a[1]).abs() < EQ);
        assert!(a[0] > 0.49 && a[0] < 0.50);
        assert!((a[2] - 0.005).abs() < EQ);
    }

    #[test]
    fn work_conserving_when_one_idle() {
        // Table 1, SeqRead/CPU-high: the reader's tiny CPU demand and Dom0's
        // I/O handling are both satisfied; the burner gets the rest.
        let a = fair_share(1.0, &[0.05, 1.0, 0.10], &[256.0, 256.0, 256.0]);
        assert!((a[0] - 0.05).abs() < EQ);
        assert!((a[2] - 0.10).abs() < EQ);
        assert!((a[1] - 0.85).abs() < EQ);
    }
}
