//! Interference profiling: runs a target application against a set of
//! background workloads and records the model training data (features and
//! responses), plus the pairwise benchmark interference matrix the
//! data-center simulator replays.

use crate::app::AppModel;
use crate::apps::Benchmark;
use crate::engine::{CoRunOutcome, Engine, VmObservation};

/// One profiled observation: the features TRACON's models consume and the
/// measured responses.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ProfileRecord {
    /// Name of the target application (runs in VM1).
    pub target: String,
    /// Name of the background workload (runs in VM2).
    pub background: String,
    /// Model features: the target's solo-profile characteristics followed
    /// by the background's solo-profile characteristics —
    /// `[r1, w1, c1, d1, r2, w2, c2, d2]`. Profiles (rather than co-run
    /// throttled observations) keep training and prediction queries in
    /// the same feature distribution: the scheduler scores a candidate
    /// pairing from the two applications' stored profiles (paper Fig 2:
    /// the prediction module consumes "the application profiles and the
    /// machine status").
    pub features: [f64; 8],
    /// The background's characteristics as actually observed during this
    /// co-run (kept for diagnostics and the monitor experiments).
    pub background_observed: [f64; 4],
    /// Measured runtime of the target under this interference, seconds.
    pub runtime: f64,
    /// Measured average IOPS of the target under this interference.
    pub iops: f64,
}

impl ProfileRecord {
    /// The feature vector as a `Vec` (for the model-fitting APIs).
    pub fn features_vec(&self) -> Vec<f64> {
        self.features.to_vec()
    }
}

/// A complete training set for one target application.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ProfileSet {
    /// Target application name.
    pub target: String,
    /// The target's solo characteristics (profile stored by TRACON).
    pub solo: VmObservation,
    /// The target's solo runtime, seconds.
    pub solo_runtime: f64,
    /// The target's solo IOPS.
    pub solo_iops: f64,
    /// One record per background workload.
    pub records: Vec<ProfileRecord>,
}

impl ProfileSet {
    /// Feature rows for model fitting.
    pub fn feature_rows(&self) -> Vec<Vec<f64>> {
        self.records.iter().map(|r| r.features_vec()).collect()
    }

    /// Runtime responses aligned with [`ProfileSet::feature_rows`].
    pub fn runtimes(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.runtime).collect()
    }

    /// IOPS responses aligned with [`ProfileSet::feature_rows`].
    pub fn iops(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.iops).collect()
    }
}

/// The measured pairwise interference matrix over a benchmark suite:
/// steady-state runtime and IOPS of each application when co-located with
/// each possible neighbour (or an idle VM). The data-center simulator
/// replays these measurements, exactly as the paper's simulator replays
/// its testbed measurements.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PairMatrix {
    /// Application names, indexed by the matrix axes.
    pub names: Vec<String>,
    /// Solo runtime per application, seconds.
    pub solo_runtime: Vec<f64>,
    /// Solo IOPS per application.
    pub solo_iops: Vec<f64>,
    /// Solo characteristics per application.
    pub solo_obs: Vec<VmObservation>,
    /// `runtime[i][j]`: steady-state runtime of app `i` co-located with a
    /// continuously-running app `j`.
    pub runtime: Vec<Vec<f64>>,
    /// `iops[i][j]`: steady-state IOPS of app `i` co-located with app `j`.
    pub iops: Vec<Vec<f64>>,
    /// `observed[i][j]`: characteristics of app `i` while co-located with
    /// app `j`.
    pub observed: Vec<Vec<VmObservation>>,
}

impl PairMatrix {
    /// Number of applications covered.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the matrix covers no applications.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Progress-rate factor of app `i` when co-located with app `j`
    /// (1.0 = no interference, 0.1 = ten times slower).
    pub fn rate_factor(&self, i: usize, j: usize) -> f64 {
        self.solo_runtime[i] / self.runtime[i][j]
    }

    /// Slowdown of app `i` under neighbour `j` relative to running alone.
    pub fn slowdown(&self, i: usize, j: usize) -> f64 {
        self.runtime[i][j] / self.solo_runtime[i]
    }

    /// Index of an application by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }
}

/// The profiling harness around a co-run engine.
#[derive(Debug, Clone)]
pub struct Profiler {
    engine: Engine,
}

impl Profiler {
    /// Creates a profiler over the given engine.
    pub fn new(engine: Engine) -> Self {
        Profiler { engine }
    }

    /// Borrow the underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Runs the target alone and returns `(observation, runtime, iops)`.
    pub fn solo(&self, target: &AppModel, seed: u64) -> (VmObservation, f64, f64) {
        let out = self.engine.solo_run(target, seed);
        (out.observed[0], out.runtime[0], out.iops[0])
    }

    /// Measures the solo-profile characteristics of a background
    /// workload (endless backgrounds are observed for a fixed window).
    pub fn background_profile(&self, bg: &AppModel, seed: u64) -> VmObservation {
        if bg.endless {
            self.engine.observe_endless(bg, 60.0, seed)
        } else {
            self.engine.solo_run(bg, seed).observed[0]
        }
    }

    /// Profiles `target` against every background workload, producing a
    /// training set. Backgrounds must be endless (the synthetic
    /// calibration workloads are); finite backgrounds are converted with
    /// [`AppModel::as_endless`] so the measurement captures steady-state
    /// interference.
    pub fn profile(
        &self,
        target: &AppModel,
        backgrounds: &[AppModel],
        base_seed: u64,
    ) -> ProfileSet {
        let (solo, solo_runtime, solo_iops) = self.solo(target, base_seed);
        let mut records = Vec::with_capacity(backgrounds.len());
        for (k, bg) in backgrounds.iter().enumerate() {
            let seed = base_seed.wrapping_add(k as u64 + 1);
            let bg_profile = self.background_profile(bg, seed);
            let bg_run = if bg.endless {
                bg.clone()
            } else {
                bg.as_endless()
            };
            let out = self.engine.co_run(target, &bg_run, seed);
            records.push(Self::record_from(target, bg, &solo, &bg_profile, &out));
        }
        ProfileSet {
            target: target.name.clone(),
            solo,
            solo_runtime,
            solo_iops,
            records,
        }
    }

    fn record_from(
        target: &AppModel,
        bg: &AppModel,
        solo: &VmObservation,
        bg_profile: &VmObservation,
        out: &CoRunOutcome,
    ) -> ProfileRecord {
        let observed = out.observed[1];
        ProfileRecord {
            target: target.name.clone(),
            background: bg.name.clone(),
            features: [
                solo.read_rps,
                solo.write_rps,
                solo.cpu_util,
                solo.dom0_util,
                bg_profile.read_rps,
                bg_profile.write_rps,
                bg_profile.cpu_util,
                bg_profile.dom0_util,
            ],
            background_observed: observed.as_features(),
            runtime: out.runtime[0],
            iops: out.iops[0],
        }
    }

    /// Profiles the target against a single background, returning the
    /// joint feature vector and the measured `(runtime, iops)` responses.
    /// `solo` is the target's stored solo profile (measure it once with
    /// [`Profiler::solo`]). Used by the online-learning experiments that
    /// stream observations one at a time.
    pub fn profile_one(
        &self,
        target: &AppModel,
        solo: &VmObservation,
        bg: &AppModel,
        seed: u64,
    ) -> ([f64; 8], f64, f64) {
        let bg_profile = self.background_profile(bg, seed);
        let bg_run = if bg.endless {
            bg.clone()
        } else {
            bg.as_endless()
        };
        let out = self.engine.co_run(target, &bg_run, seed);
        let record = Self::record_from(target, bg, solo, &bg_profile, &out);
        (record.features, record.runtime, record.iops)
    }

    /// Measures the full pairwise interference matrix over `apps`. Entry
    /// `(i, j)` runs app `i` to completion against an endless loop of app
    /// `j`, capturing the steady-state co-located performance the
    /// data-center simulator replays.
    pub fn pair_matrix(&self, apps: &[AppModel], base_seed: u64) -> PairMatrix {
        let n = apps.len();
        let mut names = Vec::with_capacity(n);
        let mut solo_runtime = Vec::with_capacity(n);
        let mut solo_iops = Vec::with_capacity(n);
        let mut solo_obs = Vec::with_capacity(n);
        for (i, a) in apps.iter().enumerate() {
            let (obs, rt, io) = self.solo(a, base_seed.wrapping_add(i as u64));
            names.push(a.name.clone());
            solo_runtime.push(rt);
            solo_iops.push(io);
            solo_obs.push(obs);
        }
        let mut runtime = vec![vec![0.0; n]; n];
        let mut iops = vec![vec![0.0; n]; n];
        let mut observed = vec![vec![VmObservation::default(); n]; n];
        for i in 0..n {
            for j in 0..n {
                let seed = base_seed.wrapping_add(1000 + (i * n + j) as u64);
                let out = self.engine.co_run(&apps[i], &apps[j].as_endless(), seed);
                runtime[i][j] = out.runtime[0];
                iops[i][j] = out.iops[0];
                observed[i][j] = out.observed[0];
            }
        }
        PairMatrix {
            names,
            solo_runtime,
            solo_iops,
            solo_obs,
            runtime,
            iops,
            observed,
        }
    }

    /// Convenience: the pair matrix over the paper's eight benchmarks
    /// (optionally time-scaled for speed).
    pub fn benchmark_pair_matrix(&self, time_scale: f64, base_seed: u64) -> PairMatrix {
        let apps: Vec<AppModel> = Benchmark::ALL
            .iter()
            .map(|b| b.model().time_scaled(time_scale))
            .collect();
        self.pair_matrix(&apps, base_seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;
    use crate::config::HostConfig;

    fn profiler() -> Profiler {
        Profiler::new(Engine::new(HostConfig::testbed()))
    }

    #[test]
    fn solo_profile_of_seqread() {
        let p = profiler();
        let (obs, rt, iops) = p.solo(&apps::seq_read(), 1);
        assert!(rt > 250.0 && rt < 350.0);
        assert!(iops > 200.0);
        assert!(obs.read_rps > 200.0);
        assert!(obs.write_rps < 1.0);
    }

    #[test]
    fn profile_against_small_grid() {
        let p = profiler();
        let target = apps::seq_read().time_scaled(0.2);
        let bgs = vec![
            apps::synthetic(0.0, 0.0, 0.0),
            apps::synthetic(1.0, 0.0, 0.0),
            apps::synthetic(0.0, 1.0, 1.0),
        ];
        let set = p.profile(&target, &bgs, 7);
        assert_eq!(set.records.len(), 3);
        // Idle background: runtime near solo. I/O heavy: much slower.
        let idle_rt = set.records[0].runtime;
        let io_rt = set.records[2].runtime;
        assert!(io_rt > 3.0 * idle_rt, "idle={idle_rt} io={io_rt}");
        // Features: first four entries equal the solo characteristics.
        assert!((set.records[1].features[0] - set.solo.read_rps).abs() < 1e-9);
        // Background characteristics differ across backgrounds.
        assert!(set.records[1].features[6] > set.records[0].features[6]);
    }

    #[test]
    fn pair_matrix_structure() {
        let p = profiler();
        // Two cheap apps for speed.
        let a = apps::calc().time_scaled(0.1);
        let b = apps::seq_read().time_scaled(0.1);
        let m = p.pair_matrix(&[a, b], 3);
        assert_eq!(m.len(), 2);
        // calc vs calc doubles; seqread vs seqread collapses much harder.
        assert!(
            (1.8..2.2).contains(&m.slowdown(0, 0)),
            "calc slowdown {}",
            m.slowdown(0, 0)
        );
        assert!(
            m.slowdown(1, 1) > 5.0,
            "seqread slowdown {}",
            m.slowdown(1, 1)
        );
        // rate_factor is the reciprocal view.
        let rf = m.rate_factor(1, 1);
        assert!((rf * m.slowdown(1, 1) - 1.0).abs() < 1e-9);
        assert_eq!(m.index_of("calc"), Some(0));
        assert_eq!(m.index_of("nope"), None);
    }
}
