//! Application behaviour models.
//!
//! An application is a sequence of *phases*. Each phase declares the
//! resource consumption of the application when it runs at full speed:
//! a CPU utilization, read/write request rates, a request size, and a
//! sequentiality. The engine scales a phase's progress by a rate
//! multiplier `r in [0, 1]` when resources are contended — at multiplier
//! `r` the application consumes `background_cpu + r * cpu` CPU and issues
//! `r * (read_rps + write_rps)` requests per second, and the phase's
//! nominal duration stretches by `1 / r`.
//!
//! `background_cpu` models CPU burned independently of I/O progress (the
//! paper's synthetic load generator runs its arithmetic loop concurrently
//! with its I/O loop), while `cpu` is progress-coupled compute (a real
//! application blocked on I/O stops computing).

use serde::{Deserialize, Serialize};

/// One phase of an application's execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Nominal (uncontended) duration of the phase in seconds.
    pub nominal_s: f64,
    /// Read request rate at full speed, requests/s.
    pub read_rps: f64,
    /// Write request rate at full speed, requests/s.
    pub write_rps: f64,
    /// Request size, KiB.
    pub req_kb: f64,
    /// Stream sequentiality in `[0, 1]`.
    pub sequentiality: f64,
    /// Progress-coupled CPU utilization at full speed, in vCPUs.
    pub cpu: f64,
    /// Progress-independent CPU burn, in vCPUs (synthetic loads).
    pub background_cpu: f64,
}

impl Phase {
    /// A pure-compute phase.
    pub fn compute(nominal_s: f64, cpu: f64) -> Self {
        Phase {
            nominal_s,
            read_rps: 0.0,
            write_rps: 0.0,
            req_kb: 0.0,
            sequentiality: 0.0,
            cpu,
            background_cpu: 0.0,
        }
    }

    /// Total I/O request rate at full speed.
    pub fn io_rps(&self) -> f64 {
        self.read_rps + self.write_rps
    }

    /// True when the phase performs no I/O.
    pub fn is_compute_only(&self) -> bool {
        self.io_rps() < 1e-9
    }
}

/// A complete application model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppModel {
    /// Human-readable benchmark name.
    pub name: String,
    /// Phase program, executed in order (cyclically when `endless`).
    pub phases: Vec<Phase>,
    /// Endless applications loop over their phases forever (synthetic
    /// background workloads); finite applications terminate after the
    /// last phase.
    pub endless: bool,
    /// Multiplicative demand jitter: each phase's demands are scaled by
    /// independent `N(1, jitter)` draws (clamped positive) when entered.
    /// This is the run-to-run variability of real benchmarks.
    pub jitter: f64,
    /// Whether the benchmark's runtime is a meaningful response (FileBench
    /// web takes its runtime as an *input*, so the paper evaluates only its
    /// IOPS).
    pub runtime_meaningful: bool,
}

impl AppModel {
    /// Creates a finite application with the given phases.
    ///
    /// # Panics
    /// Panics when `phases` is empty or any phase has a non-positive
    /// nominal duration.
    pub fn new(name: impl Into<String>, phases: Vec<Phase>) -> Self {
        let name = name.into();
        assert!(!phases.is_empty(), "app {name} has no phases");
        for (i, p) in phases.iter().enumerate() {
            assert!(p.nominal_s > 0.0, "app {name} phase {i} has nominal_s <= 0");
        }
        AppModel {
            name,
            phases,
            endless: false,
            jitter: 0.0,
            runtime_meaningful: true,
        }
    }

    /// Marks the application as endless (cyclic background workload).
    pub fn endless(mut self) -> Self {
        self.endless = true;
        self
    }

    /// Sets the demand jitter.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        assert!(jitter >= 0.0, "negative jitter");
        self.jitter = jitter;
        self
    }

    /// Marks the runtime response as not meaningful (IOPS-only benchmark).
    pub fn iops_only(mut self) -> Self {
        self.runtime_meaningful = false;
        self
    }

    /// Total nominal (uncontended) duration across all phases.
    pub fn nominal_runtime(&self) -> f64 {
        self.phases.iter().map(|p| p.nominal_s).sum()
    }

    /// Nominal total number of I/O requests across all phases.
    pub fn nominal_requests(&self) -> f64 {
        self.phases.iter().map(|p| p.io_rps() * p.nominal_s).sum()
    }

    /// Nominal average IOPS when running uncontended.
    pub fn nominal_iops(&self) -> f64 {
        let t = self.nominal_runtime();
        if t > 0.0 {
            self.nominal_requests() / t
        } else {
            0.0
        }
    }

    /// Returns a copy with every phase's nominal duration scaled by
    /// `factor` (demand *rates* unchanged). Useful to shrink benchmarks
    /// for fast tests while preserving their interference behaviour.
    ///
    /// # Panics
    /// Panics when `factor` is not positive.
    pub fn time_scaled(&self, factor: f64) -> AppModel {
        assert!(factor > 0.0, "non-positive time scale");
        let mut out = self.clone();
        for p in &mut out.phases {
            p.nominal_s *= factor;
        }
        out
    }

    /// Returns an endless (cyclic) copy of this application — used when a
    /// finite benchmark serves as a steady background workload during
    /// pairwise interference profiling.
    pub fn as_endless(&self) -> AppModel {
        let mut out = self.clone();
        out.endless = true;
        out
    }

    /// Nominal average CPU utilization (progress-coupled plus background).
    pub fn nominal_cpu(&self) -> f64 {
        let t = self.nominal_runtime();
        if t <= 0.0 {
            return 0.0;
        }
        self.phases
            .iter()
            .map(|p| (p.cpu + p.background_cpu) * p.nominal_s)
            .sum::<f64>()
            / t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_helpers() {
        let p = Phase::compute(10.0, 0.8);
        assert!(p.is_compute_only());
        assert_eq!(p.io_rps(), 0.0);
        let q = Phase {
            read_rps: 30.0,
            write_rps: 20.0,
            ..p
        };
        assert_eq!(q.io_rps(), 50.0);
        assert!(!q.is_compute_only());
    }

    #[test]
    fn nominal_aggregates() {
        let app = AppModel::new(
            "t",
            vec![
                Phase {
                    nominal_s: 10.0,
                    read_rps: 100.0,
                    write_rps: 0.0,
                    req_kb: 64.0,
                    sequentiality: 0.5,
                    cpu: 0.2,
                    background_cpu: 0.0,
                },
                Phase::compute(10.0, 1.0),
            ],
        );
        assert_eq!(app.nominal_runtime(), 20.0);
        assert_eq!(app.nominal_requests(), 1000.0);
        assert!((app.nominal_iops() - 50.0).abs() < 1e-12);
        assert!((app.nominal_cpu() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn builder_flags() {
        let app = AppModel::new("t", vec![Phase::compute(1.0, 0.5)])
            .endless()
            .with_jitter(0.1)
            .iops_only();
        assert!(app.endless);
        assert_eq!(app.jitter, 0.1);
        assert!(!app.runtime_meaningful);
    }

    #[test]
    #[should_panic(expected = "has no phases")]
    fn empty_phases_panics() {
        AppModel::new("bad", vec![]);
    }

    #[test]
    #[should_panic(expected = "nominal_s <= 0")]
    fn zero_duration_panics() {
        AppModel::new("bad", vec![Phase::compute(0.0, 0.5)]);
    }
}
