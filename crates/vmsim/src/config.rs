//! Host hardware configuration for the virtualized testbed.
//!
//! The paper's testbed is a Dell machine (2.93 GHz Core2 Duo E7500, 4 GB
//! RAM, 1 TB Samsung SATA disk) running Xen 3.1.2 with two guest VMs of
//! 1 vCPU / 512 MB each. Both guest vCPUs and the driver domain contend
//! for CPU (the paper's Table 1 shows clean 2x slowdown for co-located
//! CPU-bound apps, i.e. the guests are multiplexed on the same core), and
//! all I/O is routed through Dom0.
//!
//! The constants here are calibrated so that the Table 1 structure is
//! reproduced: ~2x CPU fair-sharing, ~10x collision of two sequential
//! readers, and a further degradation (to ~16x) when the co-located
//! application also saturates the CPU and starves Dom0.

use serde::{Deserialize, Serialize};

/// Parameters of the (mechanical) storage device behind the host.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskParams {
    /// Sequential transfer bandwidth in MB/s.
    pub seq_bandwidth_mb: f64,
    /// Average cost of a non-sequential access (seek + rotational delay), ms.
    pub seek_ms: f64,
    /// Fixed per-request overhead (controller, protocol; iSCSI adds network
    /// round-trip time here), ms.
    pub per_req_overhead_ms: f64,
    /// Absolute cap on requests per second regardless of size.
    pub iops_cap: f64,
    /// Sequentiality decay exponent under stream mixing: a stream holding
    /// a `share` of the request mix keeps effective sequentiality
    /// `seq * share^mix_degradation`. Higher values model devices whose
    /// sequential runs are destroyed faster by interleaving.
    pub mix_degradation: f64,
}

impl DiskParams {
    /// Local 1 TB SATA hard drive (the paper's testbed disk).
    pub fn local_sata() -> Self {
        DiskParams {
            seq_bandwidth_mb: 100.0,
            seek_ms: 12.0,
            per_req_overhead_ms: 0.05,
            iops_cap: 15_000.0,
            mix_degradation: 3.0,
        }
    }

    /// Remote storage reached over a congested iSCSI path (the Fig. 7
    /// adaptation scenario): a fraction of the local bandwidth, network
    /// round trips folded into both the per-request overhead and the
    /// effective positioning cost, and the same mixing behaviour as the
    /// backing disk. Every response is several times slower than on
    /// local storage, which is what makes the locally-trained models
    /// drift as dramatically as the paper reports (runtime error
    /// 12% -> 160%).
    pub fn iscsi() -> Self {
        DiskParams {
            seq_bandwidth_mb: 30.0,
            seek_ms: 30.0,
            per_req_overhead_ms: 2.0,
            iops_cap: 3_000.0,
            mix_degradation: 3.0,
        }
    }

    /// An early-generation SATA solid-state drive (the paper's future-work
    /// target): no mechanical positioning, so stream mixing costs almost
    /// nothing — the device-level interference that motivates TRACON
    /// largely disappears, leaving only bandwidth sharing and the Dom0
    /// CPU path.
    pub fn ssd() -> Self {
        DiskParams {
            seq_bandwidth_mb: 250.0,
            seek_ms: 0.05,
            per_req_overhead_ms: 0.03,
            iops_cap: 35_000.0,
            mix_degradation: 0.2,
        }
    }

    /// A RAID-0 stripe over `n` disks like [`DiskParams::local_sata`]:
    /// aggregate bandwidth and IOPS scale with the stripe width, and the
    /// independent spindles absorb part of the interleaving (competing
    /// streams often hit different disks), softening the sequentiality
    /// decay.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn raid0(n: usize) -> Self {
        assert!(n > 0, "RAID-0 needs at least one disk");
        let base = DiskParams::local_sata();
        let width = n as f64;
        DiskParams {
            seq_bandwidth_mb: base.seq_bandwidth_mb * width,
            seek_ms: base.seek_ms,
            per_req_overhead_ms: base.per_req_overhead_ms,
            iops_cap: base.iops_cap * width * 0.8,
            // Interleaved streams land on different spindles ~ (n-1)/n of
            // the time, so the per-stream sequentiality decay softens.
            mix_degradation: base.mix_degradation / width.sqrt(),
        }
    }
}

/// Full host configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostConfig {
    /// CPU capacity (in cores) of the pool shared by the guest vCPUs and
    /// the driver domain. The paper's measurements behave as a single
    /// shared core (Table 1 row 1 shows 1.96x for two CPU-bound guests).
    pub cpu_capacity: f64,
    /// Scheduling weight of each guest domain (Xen credit default 256).
    pub guest_weight: f64,
    /// Scheduling weight of the driver domain.
    pub dom0_weight: f64,
    /// Dom0 CPU seconds consumed per I/O request handled (grant mapping,
    /// block backend, interrupt routing).
    pub dom0_cost_per_req_s: f64,
    /// Dom0 baseline CPU demand (housekeeping) in cores.
    pub dom0_base_cpu: f64,
    /// Scheduling-latency penalty factor: when the runnable vCPUs saturate
    /// the host CPU (total demand ramps through `[0.9, 1.05] x capacity`),
    /// the I/O path efficiency is multiplied by
    /// `1 / (1 + dom0_latency_gamma * saturation)` with saturation in
    /// `[0, 1]`. Models the delayed wakeups of the driver domain when it
    /// must wait out whole scheduler timeslices.
    pub dom0_latency_gamma: f64,
    /// Storage device parameters.
    pub disk: DiskParams,
    /// Simulation step granularity in seconds (upper bound; steps shrink to
    /// hit phase boundaries exactly).
    pub dt_max: f64,
    /// Safety cap: a co-run aborts after this many simulated seconds.
    pub max_sim_time: f64,
}

/// Fluent construction of a [`HostConfig`], starting from the calibrated
/// testbed defaults. Obtained from [`HostConfig::builder`]:
///
/// ```
/// use tracon_vmsim::{DiskParams, HostConfig};
/// let host = HostConfig::builder()
///     .disk(DiskParams::ssd())
///     .cpu_capacity(2.0)
///     .build();
/// assert_eq!(host.cpu_capacity, 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct HostConfigBuilder {
    cfg: HostConfig,
}

impl HostConfigBuilder {
    /// Replaces the storage device parameters.
    pub fn disk(mut self, disk: DiskParams) -> Self {
        self.cfg.disk = disk;
        self
    }

    /// Sets the shared CPU pool capacity in cores.
    pub fn cpu_capacity(mut self, cores: f64) -> Self {
        self.cfg.cpu_capacity = cores;
        self
    }

    /// Sets the guest and driver-domain scheduling weights.
    pub fn weights(mut self, guest: f64, dom0: f64) -> Self {
        self.cfg.guest_weight = guest;
        self.cfg.dom0_weight = dom0;
        self
    }

    /// Sets the Dom0 CPU cost per handled I/O request, in CPU seconds.
    pub fn dom0_cost_per_req_s(mut self, cost: f64) -> Self {
        self.cfg.dom0_cost_per_req_s = cost;
        self
    }

    /// Sets the scheduling-latency penalty factor.
    pub fn dom0_latency_gamma(mut self, gamma: f64) -> Self {
        self.cfg.dom0_latency_gamma = gamma;
        self
    }

    /// Sets the simulation step granularity upper bound, in seconds.
    pub fn dt_max(mut self, dt: f64) -> Self {
        self.cfg.dt_max = dt;
        self
    }

    /// Sets the co-run abort cap, in simulated seconds.
    pub fn max_sim_time(mut self, t: f64) -> Self {
        self.cfg.max_sim_time = t;
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> HostConfig {
        self.cfg
    }
}

impl HostConfig {
    /// The calibrated testbed configuration with local SATA storage.
    pub fn testbed() -> Self {
        HostConfig {
            cpu_capacity: 1.0,
            guest_weight: 256.0,
            dom0_weight: 256.0,
            dom0_cost_per_req_s: 0.000_5,
            dom0_base_cpu: 0.005,
            dom0_latency_gamma: 0.55,
            disk: DiskParams::local_sata(),
            dt_max: 0.25,
            max_sim_time: 200_000.0,
        }
    }

    /// A builder seeded with the [`HostConfig::testbed`] defaults.
    pub fn builder() -> HostConfigBuilder {
        HostConfigBuilder {
            cfg: HostConfig::testbed(),
        }
    }

    /// The fixed class names [`HostConfig::class`] resolves, with
    /// `raid0x<N>` standing for the parametric RAID-0 family
    /// (`raid0x4` = a four-disk stripe).
    pub fn class_names() -> &'static [&'static str] {
        &["local", "iscsi", "ssd", "raid0x<N>"]
    }

    /// The testbed host with the named storage class: `"local"` (SATA),
    /// `"iscsi"` (remote storage), `"ssd"`, or `"raid0x<N>"` (an `N`-disk
    /// stripe). Returns `None` for unknown names.
    pub fn try_class(name: &str) -> Option<Self> {
        let disk = match name {
            "local" => DiskParams::local_sata(),
            "iscsi" => DiskParams::iscsi(),
            "ssd" => DiskParams::ssd(),
            _ => {
                let n: usize = name.strip_prefix("raid0x")?.parse().ok()?;
                if n == 0 {
                    return None;
                }
                DiskParams::raid0(n)
            }
        };
        Some(HostConfig::builder().disk(disk).build())
    }

    /// The testbed host with the named storage class (see
    /// [`HostConfig::try_class`]).
    ///
    /// # Panics
    /// Panics on an unknown class name.
    pub fn class(name: &str) -> Self {
        HostConfig::try_class(name).unwrap_or_else(|| {
            panic!(
                "unknown machine class '{name}' (known: {})",
                HostConfig::class_names().join(", ")
            )
        })
    }

    /// The testbed configuration with iSCSI remote storage (Fig. 7).
    #[deprecated(
        since = "0.1.0",
        note = "use `HostConfig::class(\"iscsi\")` or the builder"
    )]
    pub fn testbed_iscsi() -> Self {
        HostConfig::class("iscsi")
    }

    /// The testbed with an SSD (future-work extension).
    #[deprecated(
        since = "0.1.0",
        note = "use `HostConfig::class(\"ssd\")` or the builder"
    )]
    pub fn testbed_ssd() -> Self {
        HostConfig::class("ssd")
    }

    /// The testbed with a RAID-0 stripe over `n` local disks
    /// (future-work extension).
    #[deprecated(
        since = "0.1.0",
        note = "use `HostConfig::class(\"raid0x<N>\")` or the builder"
    )]
    pub fn testbed_raid0(n: usize) -> Self {
        HostConfig::class(&format!("raid0x{n}"))
    }
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig::testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let t = HostConfig::testbed();
        assert!(t.cpu_capacity > 0.0);
        assert!(t.disk.seq_bandwidth_mb > 0.0);
        assert!(t.dt_max > 0.0 && t.dt_max < 10.0);

        let i = HostConfig::class("iscsi");
        assert!(i.disk.per_req_overhead_ms > t.disk.per_req_overhead_ms);
        assert!(i.disk.seq_bandwidth_mb < t.disk.seq_bandwidth_mb);
        // Non-disk parameters identical: same host, different storage.
        assert_eq!(i.cpu_capacity, t.cpu_capacity);
        assert_eq!(i.dom0_cost_per_req_s, t.dom0_cost_per_req_s);
    }

    #[test]
    fn default_is_testbed() {
        assert_eq!(HostConfig::default(), HostConfig::testbed());
    }

    #[test]
    fn ssd_has_no_meaningful_seek() {
        let s = DiskParams::ssd();
        assert!(s.seek_ms < 0.1);
        assert!(s.iops_cap > DiskParams::local_sata().iops_cap);
        assert!(s.mix_degradation < DiskParams::local_sata().mix_degradation);
    }

    #[test]
    fn raid0_scales_with_width() {
        let one = DiskParams::raid0(1);
        let four = DiskParams::raid0(4);
        assert!((one.seq_bandwidth_mb - DiskParams::local_sata().seq_bandwidth_mb).abs() < 1e-9);
        assert!((four.seq_bandwidth_mb - 400.0).abs() < 1e-9);
        assert!(four.iops_cap > one.iops_cap);
        assert!(four.mix_degradation < one.mix_degradation);
    }

    #[test]
    #[should_panic(expected = "at least one disk")]
    fn raid0_zero_panics() {
        DiskParams::raid0(0);
    }

    #[test]
    fn builder_starts_from_testbed_defaults() {
        assert_eq!(HostConfig::builder().build(), HostConfig::testbed());
        let custom = HostConfig::builder()
            .disk(DiskParams::ssd())
            .cpu_capacity(2.0)
            .weights(512.0, 256.0)
            .dom0_cost_per_req_s(0.001)
            .dom0_latency_gamma(0.3)
            .dt_max(0.1)
            .max_sim_time(1_000.0)
            .build();
        assert_eq!(custom.disk, DiskParams::ssd());
        assert_eq!(custom.cpu_capacity, 2.0);
        assert_eq!(custom.guest_weight, 512.0);
        assert_eq!(custom.max_sim_time, 1_000.0);
    }

    #[test]
    fn class_registry_resolves_known_names() {
        assert_eq!(HostConfig::class("local"), HostConfig::testbed());
        assert_eq!(HostConfig::class("iscsi").disk, DiskParams::iscsi());
        assert_eq!(HostConfig::class("ssd").disk, DiskParams::ssd());
        assert_eq!(HostConfig::class("raid0x4").disk, DiskParams::raid0(4));
        assert!(HostConfig::try_class("nope").is_none());
        assert!(HostConfig::try_class("raid0x0").is_none());
        assert!(HostConfig::try_class("raid0xfour").is_none());
        assert!(!HostConfig::class_names().is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown machine class")]
    fn unknown_class_panics() {
        HostConfig::class("floppy");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_the_class_registry() {
        assert_eq!(HostConfig::testbed_iscsi(), HostConfig::class("iscsi"));
        assert_eq!(HostConfig::testbed_ssd(), HostConfig::class("ssd"));
        assert_eq!(HostConfig::testbed_raid0(3), HostConfig::class("raid0x3"));
    }
}
