//! # tracon-vmsim
//!
//! A fluid-rate simulator of the paper's virtualized testbed: one
//! physical host running a Xen-style stack — a driver domain (Dom0) that
//! performs I/O on behalf of two guest VMs — with a credit CPU scheduler
//! and a shared mechanical disk.
//!
//! This crate is the *substitution* for the paper's physical hardware
//! (see `DESIGN.md`): the paper only consumes measured interference
//! statistics (co-located runtimes, IOPS, and per-VM resource
//! characteristics), and this simulator produces statistics with the
//! same structure:
//!
//! * fair-share CPU multiplexing doubles the runtime of co-located
//!   CPU-bound applications (Table 1, 1.96x),
//! * two sequential readers destroy each other's sequentiality and
//!   collapse by roughly an order of magnitude (Table 1, 10.23x),
//! * a neighbour that saturates both CPU and I/O starves the driver
//!   domain and degrades the I/O path even further (Table 1, 16.11x),
//! * interference is *nonlinear* (products of the two VMs' demands),
//!   which is exactly why the paper's quadratic model beats the linear
//!   one.
//!
//! Modules:
//! * [`config`] — host hardware parameters (local SATA and iSCSI presets),
//! * [`cpu`] — weighted max-min fair share (credit scheduler fluid model),
//! * [`disk`] — mechanical disk with stream-mixing interference,
//! * [`app`] — phased application behaviour models,
//! * [`apps`] — the 8 paper benchmarks, microbenchmarks, synthetic loads,
//! * [`engine`] — the two-VM co-run engine,
//! * [`profiler`] — training-set and pair-matrix measurement harness.

#![warn(missing_docs)]

pub mod app;
pub mod apps;
pub mod config;
pub mod cpu;
pub mod disk;
pub mod engine;
pub mod multi;
pub mod profiler;

pub use app::{AppModel, Phase};
pub use apps::Benchmark;
pub use config::{DiskParams, HostConfig};
pub use engine::{CoRunOutcome, Engine, IntervalSample, VmObservation};
pub use multi::{MultiEngine, MultiRunOutcome};
pub use profiler::{PairMatrix, ProfileRecord, ProfileSet, Profiler};
