//! Fluid co-run engine: simulates two applications in two guest VMs
//! sharing one virtualized host (Dom0 + 2 DomU over one CPU pool and one
//! disk), producing runtimes, I/O throughputs, and the per-VM resource
//! characteristics that TRACON's monitor would sample with xentop/iostat.
//!
//! Each step the engine solves a small fixed point: application progress
//! rates determine CPU and I/O demands; the credit scheduler and the disk
//! allocate capacity for those demands; the allocations bound the progress
//! rates. A damped iteration converges in a handful of rounds for the
//! two-VM case.

use crate::app::{AppModel, Phase};
use crate::config::HostConfig;
use crate::cpu::fair_share;
use crate::disk::{Disk, IoDemand};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The resource characteristics TRACON's monitor observes for one VM:
/// read and write request rates (iostat in Dom0), the guest's own CPU
/// utilization (xentop), and the Dom0 CPU utilization attributable to the
/// VM's I/O handling.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct VmObservation {
    /// Served read requests per second.
    pub read_rps: f64,
    /// Served write requests per second.
    pub write_rps: f64,
    /// Guest vCPU utilization in `[0, 1]`.
    pub cpu_util: f64,
    /// Dom0 CPU utilization attributed to this VM's I/O.
    pub dom0_util: f64,
}

impl VmObservation {
    /// The observation as the model's 4-feature vector
    /// `[read_rps, write_rps, cpu_util, dom0_util]`.
    pub fn as_features(&self) -> [f64; 4] {
        [self.read_rps, self.write_rps, self.cpu_util, self.dom0_util]
    }
}

/// One periodic monitor sample during a co-run.
#[derive(Debug, Clone, Copy)]
pub struct IntervalSample {
    /// Sample timestamp (end of interval), seconds.
    pub time: f64,
    /// Per-VM observations during the interval.
    pub vms: [VmObservation; 2],
    /// Total Dom0 CPU utilization during the interval.
    pub dom0_total: f64,
}

/// Outcome of a co-run of two applications.
#[derive(Debug, Clone)]
pub struct CoRunOutcome {
    /// Whether each application ran to completion (endless apps never do).
    pub finished: [bool; 2],
    /// Wall-clock runtime of each application, seconds. For endless
    /// applications this is the time they were simulated.
    pub runtime: [f64; 2],
    /// Average served IOPS of each application over its active time.
    pub iops: [f64; 2],
    /// Average observed characteristics of each VM over its active time.
    pub observed: [VmObservation; 2],
    /// Average total Dom0 CPU utilization over the run.
    pub dom0_total: f64,
    /// Periodic monitor samples (empty unless sampling was requested).
    pub samples: Vec<IntervalSample>,
}

/// Per-VM simulation state.
struct VmState {
    phases: Vec<Phase>,
    endless: bool,
    jitter: f64,
    phase_idx: usize,
    /// Progress inside the current phase, in nominal seconds.
    phase_progress: f64,
    /// Jittered copy of the current phase.
    current: Phase,
    done: bool,
    // Accumulators over the VM's active time.
    active_time: f64,
    reads_served: f64,
    writes_served: f64,
    cpu_seconds: f64,
    dom0_seconds: f64,
}

impl VmState {
    fn new(app: &AppModel, rng: &mut StdRng) -> Self {
        let mut s = VmState {
            phases: app.phases.clone(),
            endless: app.endless,
            jitter: app.jitter,
            phase_idx: 0,
            phase_progress: 0.0,
            current: app.phases[0],
            done: false,
            active_time: 0.0,
            reads_served: 0.0,
            writes_served: 0.0,
            cpu_seconds: 0.0,
            dom0_seconds: 0.0,
        };
        s.current = s.jittered(s.phases[0], rng);
        s
    }

    fn jittered(&self, base: Phase, rng: &mut StdRng) -> Phase {
        if self.jitter <= 0.0 {
            return base;
        }
        let draw = |rng: &mut StdRng| -> f64 {
            (1.0 + tracon_stats::dist::normal(rng, 0.0, self.jitter)).max(0.1)
        };
        Phase {
            nominal_s: base.nominal_s * draw(rng),
            read_rps: base.read_rps * draw(rng),
            write_rps: base.write_rps * draw(rng),
            cpu: base.cpu * draw(rng),
            ..base
        }
    }

    /// Advances phase progress; returns true when the application finished.
    fn advance(&mut self, progress_s: f64, rng: &mut StdRng) -> bool {
        if self.done {
            return true;
        }
        self.phase_progress += progress_s;
        while self.phase_progress >= self.current.nominal_s - 1e-12 {
            self.phase_progress -= self.current.nominal_s;
            self.phase_idx += 1;
            if self.phase_idx >= self.phases.len() {
                if self.endless {
                    self.phase_idx = 0;
                } else {
                    self.done = true;
                    return true;
                }
            }
            self.current = self.jittered(self.phases[self.phase_idx], rng);
        }
        false
    }
}

/// The co-run engine for one host.
#[derive(Debug, Clone)]
pub struct Engine {
    cfg: HostConfig,
    disk: Disk,
    /// Interval between monitor samples; `None` disables sampling.
    pub sample_interval: Option<f64>,
}

impl Engine {
    /// Creates an engine for the given host configuration.
    pub fn new(cfg: HostConfig) -> Self {
        let disk = Disk::new(cfg.disk);
        Engine {
            cfg,
            disk,
            sample_interval: None,
        }
    }

    /// Host configuration in use.
    pub fn config(&self) -> &HostConfig {
        &self.cfg
    }

    /// Enables periodic monitor sampling at the given interval (seconds).
    pub fn with_sampling(mut self, interval_s: f64) -> Self {
        assert!(interval_s > 0.0, "sample interval must be positive");
        self.sample_interval = Some(interval_s);
        self
    }

    /// Runs `app` alone on the host (the other VM idle) and returns its
    /// outcome. Convenience wrapper over [`Engine::co_run`].
    pub fn solo_run(&self, app: &AppModel, seed: u64) -> CoRunOutcome {
        self.co_run(app, &crate::apps::idle(), seed)
    }

    /// Measures the steady-state characteristics of an *endless*
    /// application running alone, by observing it for `duration_s`
    /// seconds against a zero-demand timer VM.
    pub fn observe_endless(&self, app: &AppModel, duration_s: f64, seed: u64) -> VmObservation {
        assert!(duration_s > 0.0, "non-positive observation window");
        let timer = AppModel::new("timer", vec![Phase::compute(duration_s, 0.0)]);
        let out = self.co_run(&timer, app, seed);
        out.observed[1]
    }

    /// Co-runs two applications from t = 0 until every finite application
    /// completes (an application that finishes first leaves its VM idle,
    /// so the survivor finishes interference-free, exactly as on the real
    /// testbed).
    ///
    /// # Panics
    /// Panics when both applications are endless, or if the simulation
    /// exceeds `max_sim_time` (a mis-calibrated model).
    pub fn co_run(&self, app1: &AppModel, app2: &AppModel, seed: u64) -> CoRunOutcome {
        assert!(
            !(app1.endless && app2.endless),
            "co_run of two endless applications never terminates"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut vms = [VmState::new(app1, &mut rng), VmState::new(app2, &mut rng)];
        let mut t = 0.0f64;
        let mut runtime = [0.0f64; 2];
        let mut samples = Vec::new();

        // Per-sample-interval accumulators.
        let mut win_start = 0.0f64;
        let mut win = [VmObservation::default(); 2];
        let mut win_dom0 = 0.0f64;

        let mut dom0_total_seconds = 0.0f64;

        // Progress-rate estimates carried across steps for warm-starting
        // the fixed point.
        let mut rates = [1.0f64; 2];

        while vms.iter().any(|v| !v.done && !v.endless) {
            assert!(
                t < self.cfg.max_sim_time,
                "co-run of {} and {} exceeded max_sim_time={}s",
                app1.name,
                app2.name,
                self.cfg.max_sim_time
            );
            // An endless background stops mattering once all finite apps
            // are done, so the loop condition above is the right one.
            let step = self.solve_step(&vms, &mut rates);

            // Choose dt: cap at dt_max and at each active VM's remaining
            // phase time so phase boundaries are hit exactly.
            let mut dt = self.cfg.dt_max;
            for (v, r) in vms.iter().zip(&rates) {
                if v.done || *r <= 1e-9 {
                    continue;
                }
                let remaining = (v.current.nominal_s - v.phase_progress).max(1e-9);
                dt = dt.min(remaining / r);
            }
            // Also stop exactly at the sampling boundary.
            if let Some(si) = self.sample_interval {
                let next_sample = win_start + si;
                if t + dt > next_sample {
                    dt = (next_sample - t).max(1e-9);
                }
            }

            // Advance state and accumulate metrics.
            for i in 0..2 {
                if vms[i].done {
                    continue;
                }
                let r = rates[i];
                let ph = vms[i].current;
                // The converged rate multiplier already reflects the disk
                // throttle, so served I/O is simply rate x demand.
                let reads = r * ph.read_rps;
                let writes = r * ph.write_rps;
                let cpu = step.cpu_alloc[i];
                let dom0_share = step.dom0_attrib[i];
                vms[i].reads_served += reads * dt;
                vms[i].writes_served += writes * dt;
                vms[i].cpu_seconds += cpu * dt;
                vms[i].dom0_seconds += dom0_share * dt;
                vms[i].active_time += dt;
                win[i].read_rps += reads * dt;
                win[i].write_rps += writes * dt;
                win[i].cpu_util += cpu * dt;
                win[i].dom0_util += dom0_share * dt;

                let finished = vms[i].advance(r * dt, &mut rng);
                if finished && runtime[i] == 0.0 {
                    runtime[i] = t + dt;
                }
            }
            dom0_total_seconds += step.dom0_used * dt;
            win_dom0 += step.dom0_used * dt;
            t += dt;

            // Emit a monitor sample at interval boundaries.
            if let Some(si) = self.sample_interval {
                if t - win_start >= si - 1e-9 {
                    let dur = (t - win_start).max(1e-9);
                    let mut obs = [VmObservation::default(); 2];
                    for i in 0..2 {
                        obs[i] = VmObservation {
                            read_rps: win[i].read_rps / dur,
                            write_rps: win[i].write_rps / dur,
                            cpu_util: win[i].cpu_util / dur,
                            dom0_util: win[i].dom0_util / dur,
                        };
                    }
                    samples.push(IntervalSample {
                        time: t,
                        vms: obs,
                        dom0_total: win_dom0 / dur,
                    });
                    win = [VmObservation::default(); 2];
                    win_dom0 = 0.0;
                    win_start = t;
                }
            }
        }

        let mut observed = [VmObservation::default(); 2];
        let mut iops = [0.0f64; 2];
        let mut finished = [false; 2];
        for i in 0..2 {
            let at = vms[i].active_time.max(1e-9);
            observed[i] = VmObservation {
                read_rps: vms[i].reads_served / at,
                write_rps: vms[i].writes_served / at,
                cpu_util: vms[i].cpu_seconds / at,
                dom0_util: vms[i].dom0_seconds / at,
            };
            iops[i] = (vms[i].reads_served + vms[i].writes_served) / at;
            finished[i] = vms[i].done;
            if !vms[i].done || runtime[i] == 0.0 {
                runtime[i] = t;
            }
        }

        CoRunOutcome {
            finished,
            runtime,
            iops,
            observed,
            dom0_total: dom0_total_seconds / t.max(1e-9),
            samples,
        }
    }

    /// One fixed-point resolution of progress rates, CPU allocation, and
    /// disk service for the current phases.
    fn solve_step(&self, vms: &[VmState; 2], rates: &mut [f64; 2]) -> StepAllocation {
        // Start optimistic: warm-start from the previous step's rates but
        // allow recovering to full speed.
        let mut r = [
            if vms[0].done { 0.0 } else { rates[0].max(0.5) },
            if vms[1].done { 0.0 } else { rates[1].max(0.5) },
        ];
        let mut out = StepAllocation::default();

        // Full-speed CPU demands: what each guest would consume if it were
        // never blocked on I/O. These drive the *feasibility* allocation —
        // the credit scheduler is work-conserving, so a guest's potential
        // share is its fair-share entitlement against the others' full
        // demands, not against their momentary (I/O-throttled) usage.
        let full_demand = [0, 1].map(|i| {
            if vms[i].done {
                0.0
            } else {
                let ph = &vms[i].current;
                (ph.background_cpu + ph.cpu).min(1.0)
            }
        });

        for _ in 0..24 {
            // --- Dom0 demand tracks the achieved I/O rates.
            let mut io_rps_at_rate = [0.0f64; 2];
            for i in 0..2 {
                if !vms[i].done {
                    io_rps_at_rate[i] = r[i] * vms[i].current.io_rps();
                }
            }
            let dom0_demand = self.cfg.dom0_base_cpu
                + (io_rps_at_rate[0] + io_rps_at_rate[1]) * self.cfg.dom0_cost_per_req_s;

            let weights = [
                self.cfg.dom0_weight,
                self.cfg.guest_weight,
                self.cfg.guest_weight,
            ];
            let alloc_full = fair_share(
                self.cfg.cpu_capacity,
                &[dom0_demand, full_demand[0], full_demand[1]],
                &weights,
            );

            // --- Actual CPU consumption at the current rate estimate (for
            // Dom0 starvation, the overload penalty, and metric recording).
            let cpu_actual = [0, 1].map(|i| {
                if vms[i].done {
                    0.0
                } else {
                    let ph = &vms[i].current;
                    (ph.background_cpu + r[i] * ph.cpu).min(1.0)
                }
            });
            let alloc = fair_share(
                self.cfg.cpu_capacity,
                &[dom0_demand, cpu_actual[0], cpu_actual[1]],
                &weights,
            );
            let dom0_alloc = alloc[0];

            // --- I/O path efficiency: Dom0 CPU starvation plus the
            // scheduling-latency penalty under host CPU saturation. When
            // the runnable vCPUs saturate the host, Dom0's wakeups are
            // delayed by whole scheduling timeslices instead of being
            // nearly instant, so every I/O pays extra latency. The demand
            // measure counts runnable pressure (background burners stay
            // runnable even when I/O progress is throttled).
            let dom0_needed = dom0_demand.max(1e-9);
            let starvation = (dom0_alloc / dom0_needed).clamp(0.0, 1.0);
            let total_demand = dom0_demand + cpu_actual[0] + cpu_actual[1];
            let saturation = ((total_demand - 0.9 * self.cfg.cpu_capacity)
                / (0.15 * self.cfg.cpu_capacity))
                .clamp(0.0, 1.0);
            // The timeslice-latency penalty only bites when the device is
            // actually interleaving multiple streams: a single stream's
            // deep request queue hides Dom0's wakeup latency, which is why
            // a pure CPU burner barely slows a lone sequential reader
            // (Table 1: 1.03x) while the same burner added to an I/O-heavy
            // neighbour amplifies 10.23x into 16.11x.
            let both_streaming = !vms[0].done
                && !vms[1].done
                && vms[0].current.io_rps() > 1e-9
                && vms[1].current.io_rps() > 1e-9;
            let latency_penalty = if both_streaming {
                1.0 / (1.0 + self.cfg.dom0_latency_gamma * saturation)
            } else {
                1.0
            };
            let path_eff = (starvation * latency_penalty).clamp(1e-6, 1.0);

            // --- CPU-feasible rates from the entitlement allocation. The
            // progress-coupled (I/O-driving) work has priority inside the
            // guest: a mostly-blocked I/O loop is always runnable the
            // moment its request completes, while the background burner
            // only absorbs leftover cycles.
            let mut r_cpu = [0.0f64; 2];
            for i in 0..2 {
                if vms[i].done {
                    continue;
                }
                let ph = &vms[i].current;
                let avail = alloc_full[i + 1];
                r_cpu[i] = if ph.cpu > 1e-12 {
                    (avail / ph.cpu).min(1.0)
                } else {
                    1.0
                };
            }

            // --- Disk allocation for the CPU-feasible request rates.
            let demands = [0, 1].map(|i| {
                if vms[i].done {
                    IoDemand::default()
                } else {
                    let ph = &vms[i].current;
                    IoDemand {
                        read_rps: r_cpu[i] * ph.read_rps,
                        write_rps: r_cpu[i] * ph.write_rps,
                        req_kb: ph.req_kb,
                        sequentiality: ph.sequentiality,
                    }
                }
            });
            let disk_alloc = self.disk.allocate(&demands, path_eff);

            // --- New rate estimates and damped update.
            let mut max_delta = 0.0f64;
            let mut new_r = [0.0f64; 2];
            for i in 0..2 {
                if vms[i].done {
                    new_r[i] = 0.0;
                    continue;
                }
                let ph = &vms[i].current;
                let r_io = if ph.io_rps() > 1e-12 {
                    r_cpu[i] * disk_alloc.fractions[i]
                } else {
                    r_cpu[i]
                };
                new_r[i] = r_io.clamp(0.0, 1.0);
                let damped = 0.5 * r[i] + 0.5 * new_r[i];
                max_delta = max_delta.max((damped - r[i]).abs());
                r[i] = damped;
            }

            // Record the allocation corresponding to the *current* rates
            // (r already carries the disk throttle via the rate update).
            let served_rps = [0, 1].map(|i| {
                if vms[i].done {
                    0.0
                } else {
                    r[i] * vms[i].current.io_rps()
                }
            });
            let total_served = served_rps[0] + served_rps[1];
            let dom0_used = (self.cfg.dom0_base_cpu + total_served * self.cfg.dom0_cost_per_req_s)
                .min(dom0_alloc.max(self.cfg.dom0_base_cpu));
            let dom0_io = (dom0_used - self.cfg.dom0_base_cpu).max(0.0);
            out = StepAllocation {
                cpu_alloc: [0, 1].map(|i| {
                    if vms[i].done {
                        0.0
                    } else {
                        // Progress-coupled CPU first, background burn fills
                        // whatever allocation remains.
                        let ph = &vms[i].current;
                        let coupled = (r[i] * ph.cpu).min(alloc[i + 1]);
                        let bg = ph.background_cpu.min(alloc[i + 1] - coupled);
                        coupled + bg
                    }
                }),
                dom0_used,
                dom0_attrib: [0, 1].map(|i| {
                    if total_served > 1e-9 {
                        dom0_io * served_rps[i] / total_served
                    } else {
                        0.0
                    }
                }),
            };

            if max_delta < 1e-4 {
                break;
            }
        }

        rates.copy_from_slice(&r);
        out
    }
}

/// Resolved resource allocation for one step.
#[derive(Debug, Clone, Default)]
struct StepAllocation {
    /// CPU actually consumed by each guest VM.
    cpu_alloc: [f64; 2],
    /// Total Dom0 CPU consumption.
    dom0_used: f64,
    /// Dom0 CPU attributed to each VM's I/O.
    dom0_attrib: [f64; 2],
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;

    fn engine() -> Engine {
        Engine::new(HostConfig::testbed())
    }

    #[test]
    fn calc_solo_runs_at_nominal_speed() {
        let out = engine().solo_run(&apps::calc(), 1);
        assert!(out.finished[0]);
        let nominal = apps::calc().nominal_runtime();
        assert!(
            (out.runtime[0] - nominal).abs() / nominal < 0.02,
            "runtime {} vs nominal {nominal}",
            out.runtime[0]
        );
        assert!(out.iops[0] < 1e-9);
        assert!(out.observed[0].cpu_util > 0.95);
    }

    #[test]
    fn seqread_solo_runs_at_nominal_speed() {
        let out = engine().solo_run(&apps::seq_read(), 1);
        let nominal = apps::seq_read().nominal_runtime();
        assert!(
            (out.runtime[0] - nominal).abs() / nominal < 0.05,
            "runtime {} vs nominal {nominal}",
            out.runtime[0]
        );
        // Served IOPS near the demanded rate.
        assert!(out.iops[0] > 240.0, "iops = {}", out.iops[0]);
        assert!(
            out.observed[0].dom0_util > 0.05,
            "dom0 = {}",
            out.observed[0].dom0_util
        );
    }

    #[test]
    fn two_calcs_double_runtime() {
        // Table 1 row 1, column CPU-high: ~2x.
        let e = engine();
        let solo = e.solo_run(&apps::calc(), 1).runtime[0];
        let co = e.co_run(&apps::calc(), &apps::calc(), 2);
        let slowdown = co.runtime[0] / solo;
        assert!((1.85..2.15).contains(&slowdown), "slowdown = {slowdown}");
    }

    #[test]
    fn calc_vs_io_high_mild_slowdown() {
        // Table 1 row 1, column I/O-high: ~1.26x.
        let e = engine();
        let solo = e.solo_run(&apps::calc(), 1).runtime[0];
        let co = e.co_run(&apps::calc(), &apps::synthetic(0.0, 1.0, 1.0), 2);
        let slowdown = co.runtime[0] / solo;
        assert!((1.05..1.6).contains(&slowdown), "slowdown = {slowdown}");
    }

    #[test]
    fn seqread_vs_cpu_high_unaffected() {
        // Table 1 row 2, column CPU-high: ~1.03x.
        let e = engine();
        let solo = e.solo_run(&apps::seq_read(), 1).runtime[0];
        let co = e.co_run(&apps::seq_read(), &apps::synthetic(1.0, 0.0, 0.0), 2);
        let slowdown = co.runtime[0] / solo;
        assert!((0.98..1.2).contains(&slowdown), "slowdown = {slowdown}");
    }

    #[test]
    fn seqread_vs_io_high_collapses() {
        // Table 1 row 2, column I/O-high: order-of-magnitude slowdown.
        let e = engine();
        let solo = e.solo_run(&apps::seq_read(), 1).runtime[0];
        let co = e.co_run(&apps::seq_read(), &apps::synthetic(0.0, 1.0, 1.0), 2);
        let slowdown = co.runtime[0] / solo;
        assert!((6.0..15.0).contains(&slowdown), "slowdown = {slowdown}");
    }

    #[test]
    fn seqread_vs_cpu_io_high_is_worst() {
        // Table 1 row 2: CPU&I/O-high must exceed I/O-high (16.11 > 10.23).
        let e = engine();
        let io_high = e.co_run(&apps::seq_read(), &apps::synthetic(0.0, 1.0, 1.0), 2);
        let both_high = e.co_run(&apps::seq_read(), &apps::synthetic(1.0, 1.0, 1.0), 2);
        assert!(
            both_high.runtime[0] > io_high.runtime[0] * 1.2,
            "both={} io={}",
            both_high.runtime[0],
            io_high.runtime[0]
        );
    }

    #[test]
    fn endless_background_never_finishes() {
        let out = engine().co_run(&apps::calc(), &apps::synthetic(0.5, 0.5, 0.0), 3);
        assert!(out.finished[0]);
        assert!(!out.finished[1]);
        assert_eq!(out.runtime[0], out.runtime[1]); // background simulated as long as calc ran
    }

    #[test]
    #[should_panic(expected = "never terminates")]
    fn two_endless_apps_panic() {
        engine().co_run(&apps::idle(), &apps::idle(), 1);
    }

    #[test]
    fn sampling_produces_intervals() {
        let e = engine().with_sampling(5.0);
        let out = e.solo_run(&apps::seq_read(), 1);
        assert!(!out.samples.is_empty());
        // Samples roughly every 5 seconds over a ~300 s run.
        assert!(out.samples.len() >= 50, "samples = {}", out.samples.len());
        let s = &out.samples[10];
        assert!(s.vms[0].read_rps > 100.0);
        assert!(s.vms[1].read_rps < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let e = engine();
        let a = e.co_run(&apps::compile(), &apps::synthetic(0.5, 0.25, 0.0), 42);
        let b = e.co_run(&apps::compile(), &apps::synthetic(0.5, 0.25, 0.0), 42);
        assert_eq!(a.runtime[0], b.runtime[0]);
        assert_eq!(a.iops[0], b.iops[0]);
    }

    #[test]
    fn jitter_varies_across_seeds() {
        let e = engine();
        let a = e.solo_run(&apps::compile(), 1).runtime[0];
        let b = e.solo_run(&apps::compile(), 2).runtime[0];
        assert!(
            (a - b).abs() > 1e-6,
            "jittered runs should differ: {a} vs {b}"
        );
    }

    #[test]
    fn finished_app_leaves_idle_vm() {
        // calc (300 s) vs video (~360 s nominal): after calc ends, video
        // should speed back up; total runtime of video under calc must be
        // well below 2x nominal.
        let e = engine();
        let video = apps::video();
        let co = e.co_run(&apps::calc(), &video, 5);
        assert!(co.finished[0] && co.finished[1]);
        assert!(co.runtime[1] < video.nominal_runtime() * 2.0);
    }

    #[test]
    fn observed_characteristics_are_consistent() {
        let e = engine();
        let out = e.co_run(&apps::blastn(), &apps::synthetic(0.25, 0.5, 0.25), 7);
        let o = &out.observed[0];
        // blastn reads far more than it writes.
        assert!(o.read_rps > 10.0 * o.write_rps.max(1e-9));
        assert!(o.cpu_util > 0.1 && o.cpu_util <= 1.0);
        assert!(o.dom0_util >= 0.0 && o.dom0_util < 1.0);
        let total = o.read_rps + o.write_rps;
        assert!((total - out.iops[0]).abs() < 1e-6);
    }
}
