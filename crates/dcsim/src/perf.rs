//! The measured pair-performance table the data-center simulator replays.
//!
//! The paper's simulator "calculates the performance by using the actual
//! statistics that have been measured in the real systems". Here the
//! statistics come from the `tracon-vmsim` testbed: for every ordered
//! application pair we store the steady-state runtime and IOPS of the
//! first application when co-located with the second, plus the solo
//! values (idle neighbour).

use tracon_core::AppId;
use tracon_vmsim::PairMatrix;

/// Neighbour index meaning "the sibling VM is idle".
pub const IDLE: usize = usize::MAX;

/// Replayable pair-performance statistics.
///
/// The pair tables are flat row-major `[n x n]` arrays (`a * n + b`), so
/// the kernel's hot refresh path reads them with one multiply-add and no
/// nested-`Vec` pointer chase.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PerfTable {
    /// Application names, index-aligned with the table axes.
    pub names: Vec<String>,
    solo_runtime: Vec<f64>,
    solo_iops: Vec<f64>,
    /// Row-major `[n x n]`: steady-state runtime of `a` next to a
    /// continuously running `b` at index `a * n + b`.
    runtime: Vec<f64>,
    /// Row-major `[n x n]`: steady-state IOPS of `a` next to `b`.
    iops: Vec<f64>,
    /// `id_index[id]` is the table index of the application with interned
    /// [`AppId`] `id`. Ids are assigned in lexicographic name order by
    /// every `AppRegistry` built from the same name set, so the map is an
    /// argsort of `names` computed once at construction.
    id_index: Vec<usize>,
}

/// Argsort of `names`: element `i` is the position in `names` of the
/// `i`-th name in lexicographic order — exactly the table index the
/// interned [`AppId`] `i` refers to.
fn id_order(names: &[String]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..names.len()).collect();
    order.sort_by(|&a, &b| names[a].cmp(&names[b]));
    order
}

impl PerfTable {
    /// Builds the table from a measured [`PairMatrix`], flattening its
    /// nested rows.
    pub fn from_pair_matrix(m: &PairMatrix) -> Self {
        PerfTable {
            names: m.names.clone(),
            solo_runtime: m.solo_runtime.clone(),
            solo_iops: m.solo_iops.clone(),
            runtime: m.runtime.iter().flatten().copied().collect(),
            iops: m.iops.iter().flatten().copied().collect(),
            id_index: id_order(&m.names),
        }
    }

    /// Number of applications covered.
    pub fn n_apps(&self) -> usize {
        self.names.len()
    }

    /// Index of an application by name.
    ///
    /// # Panics
    /// Panics when the application is unknown.
    #[deprecated(
        since = "0.1.0",
        note = "linear name scan per call — intern the name once and use `index_of_id`"
    )]
    pub fn index_of(&self, name: &str) -> usize {
        self.names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("unknown application '{name}'"))
    }

    /// Table index of an interned application id — one array load, the
    /// hot-path replacement for the name-scanning `index_of`. Valid for
    /// ids from any `AppRegistry` built over this table's name set (ids
    /// are assigned in lexicographic name order).
    #[inline]
    pub fn index_of_id(&self, app: AppId) -> usize {
        self.id_index[app.index()]
    }

    /// Offered storage-network load of application `a` in MB/s when each
    /// of its I/O requests moves `kb_per_io` KB across the link:
    /// `solo_iops * kb_per_io / 1024`. Zero when `kb_per_io` is zero
    /// (local storage).
    pub fn net_demand_mb(&self, a: usize, kb_per_io: f64) -> f64 {
        self.solo_iops[a] * kb_per_io / 1024.0
    }

    /// Solo runtime of application `a`.
    pub fn solo_runtime(&self, a: usize) -> f64 {
        self.solo_runtime[a]
    }

    /// Solo IOPS of application `a`.
    pub fn solo_iops(&self, a: usize) -> f64 {
        self.solo_iops[a]
    }

    /// Steady-state runtime of `a` with neighbour `b` (or [`IDLE`]).
    pub fn runtime(&self, a: usize, b: usize) -> f64 {
        if b == IDLE {
            self.solo_runtime[a]
        } else {
            self.runtime[a * self.names.len() + b]
        }
    }

    /// Steady-state IOPS of `a` with neighbour `b` (or [`IDLE`]).
    pub fn iops(&self, a: usize, b: usize) -> f64 {
        if b == IDLE {
            self.solo_iops[a]
        } else {
            self.iops[a * self.names.len() + b]
        }
    }

    /// Progress rate (fraction of the task's work completed per second)
    /// of `a` with neighbour `b`: `1 / runtime(a, b)`.
    pub fn rate(&self, a: usize, b: usize) -> f64 {
        1.0 / self.runtime(a, b).max(1e-9)
    }

    /// Slowdown of `a` under neighbour `b` relative to running alone.
    pub fn slowdown(&self, a: usize, b: usize) -> f64 {
        self.runtime(a, b) / self.solo_runtime[a].max(1e-9)
    }

    /// The worst pairwise slowdown in the table (diagnostics).
    pub fn max_slowdown(&self) -> f64 {
        let n = self.n_apps();
        let mut worst = 1.0f64;
        for a in 0..n {
            for b in 0..n {
                worst = worst.max(self.slowdown(a, b));
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic 2-app table: app 0 is I/O-heavy (bad with itself),
    /// app 1 is CPU-ish (benign).
    pub(crate) fn toy_table() -> PerfTable {
        let names: Vec<String> = vec!["io".into(), "cpu".into()];
        PerfTable {
            id_index: id_order(&names),
            names,
            solo_runtime: vec![100.0, 100.0],
            solo_iops: vec![200.0, 10.0],
            runtime: vec![800.0, 120.0, 110.0, 200.0],
            iops: vec![25.0, 170.0, 9.0, 5.0],
        }
    }

    #[test]
    fn idle_neighbour_gives_solo_values() {
        let t = toy_table();
        assert_eq!(t.runtime(0, IDLE), 100.0);
        assert_eq!(t.iops(0, IDLE), 200.0);
        assert!((t.rate(0, IDLE) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn pair_lookup() {
        let t = toy_table();
        assert_eq!(t.runtime(0, 0), 800.0);
        assert_eq!(t.runtime(0, 1), 120.0);
        assert_eq!(t.slowdown(0, 0), 8.0);
        assert!((t.max_slowdown() - 8.0).abs() < 1e-12);
    }

    #[test]
    #[allow(deprecated)]
    fn index_of_names() {
        let t = toy_table();
        assert_eq!(t.index_of("io"), 0);
        assert_eq!(t.index_of("cpu"), 1);
    }

    #[test]
    #[should_panic(expected = "unknown application")]
    #[allow(deprecated)]
    fn unknown_name_panics() {
        toy_table().index_of("nope");
    }

    #[test]
    #[allow(deprecated)]
    fn interned_ids_map_to_table_indices() {
        use tracon_core::AppRegistry;
        let t = toy_table();
        // "cpu" < "io" lexicographically, so AppId(0) = cpu, AppId(1) = io
        // even though the table lists io first.
        let reg = AppRegistry::from_names(t.names.iter().cloned());
        for name in &t.names {
            let id = reg.expect_id(name);
            assert_eq!(t.index_of_id(id), t.index_of(name));
        }
    }

    #[test]
    fn net_demand_scales_with_io_size() {
        let t = toy_table();
        assert_eq!(t.net_demand_mb(0, 0.0), 0.0);
        // 200 IOPS x 512 KB = 100 MB/s.
        assert!((t.net_demand_mb(0, 512.0) - 100.0).abs() < 1e-12);
    }
}
