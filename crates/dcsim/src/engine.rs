//! The discrete-event data-center simulator (paper Section 4.2).
//!
//! Machines host two VMs each; tasks arrive (statically at t = 0 or via a
//! Poisson process), a pluggable scheduler assigns them, and running
//! tasks progress at rates taken from the *measured* pair-performance
//! table. When a task's neighbour changes (its sibling completes or a new
//! task is placed beside it), the remaining work is rescaled — exactly
//! the paper's "task A has finished 80% of its workload, the remaining
//! 20% runs concurrently with task C" rule.

use crate::arrival::ArrivalEvent;
use crate::perf::IDLE;
use crate::setup::Testbed;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use tracon_core::{
    ClusterState, Fifo, Mibs, MibsAblation, MibsVariant, Mios, Mix, Objective, Scheduler,
    ScoringPolicy, Task, VmRef,
};

/// Which scheduling algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// First-in-first-out baseline.
    Fifo,
    /// Minimum-interference online scheduler (Algorithm 1).
    Mios,
    /// Minimum-interference batch scheduler with the given queue length.
    Mibs(usize),
    /// Minimum-interference mixed scheduler with the given queue length.
    Mix(usize),
    /// An ablated MIBS variant (design-decision ablations) with the given
    /// queue length.
    Ablation(MibsVariant, usize),
}

impl SchedulerKind {
    /// Instantiates the scheduler.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match *self {
            SchedulerKind::Fifo => Box::new(Fifo),
            SchedulerKind::Mios => Box::new(Mios),
            SchedulerKind::Mibs(l) => Box::new(Mibs::new(l)),
            SchedulerKind::Mix(l) => Box::new(Mix::new(l)),
            SchedulerKind::Ablation(v, _) => Box::new(MibsAblation::new(v)),
        }
    }

    /// The batch window: how many queued tasks the scheduler sees at once
    /// (unbounded for the online schedulers).
    pub fn batch_window(&self) -> Option<usize> {
        match *self {
            SchedulerKind::Mibs(l) | SchedulerKind::Mix(l) | SchedulerKind::Ablation(_, l) => {
                Some(l)
            }
            _ => None,
        }
    }

    /// Display name.
    pub fn name(&self) -> String {
        self.build().name()
    }
}

/// Simulation outcome metrics.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Scheduler display name.
    pub scheduler: String,
    /// Tasks that arrived within the horizon.
    pub arrived: usize,
    /// Tasks completed within the horizon.
    pub completed: usize,
    /// Arrivals refused because the admission queue was full (always 0
    /// with an unbounded queue).
    pub refused: usize,
    /// Sum of task runtimes (completion - start) over completed tasks —
    /// the paper's `RT_total` (equation 3).
    pub total_runtime: f64,
    /// Sum of per-task average IOPS over completed tasks — the paper's
    /// `IOPS_total` (equation 4).
    pub total_iops: f64,
    /// Time the last completion happened (static scenarios: makespan).
    pub makespan: f64,
    /// Mean queueing delay (start - arrival) of started tasks.
    pub mean_wait: f64,
    /// Realized observations `(joint features, runtime, avg IOPS)` per
    /// completed task — the stream TRACON's monitor feeds back into model
    /// adaptation. Empty unless requested via
    /// [`Simulation::with_observation_collection`].
    pub observations: Vec<TaskObservation>,
}

/// One realized task observation collected by the monitor: the joint
/// feature vector the prediction module would have used (task profile +
/// the profile of the neighbour resident when the task started), with the
/// measured outcome.
#[derive(Debug, Clone, Copy)]
pub struct TaskObservation {
    /// `[task r/w/cpu/dom0, neighbour r/w/cpu/dom0]`.
    pub features: [f64; 8],
    /// Realized runtime, seconds.
    pub runtime: f64,
    /// Realized average IOPS.
    pub iops: f64,
}

impl SimResult {
    /// Throughput in tasks per hour over the simulated horizon.
    pub fn throughput_per_hour(&self, horizon_s: f64) -> f64 {
        self.completed as f64 / (horizon_s / 3600.0)
    }
}

#[derive(Debug, Clone, Copy)]
enum EventKind {
    Arrival(usize),
    Completion { vm: VmRef, version: u64 },
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for the max-heap: earliest time (then lowest seq) first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}

#[derive(Debug, Clone)]
struct Running {
    app_idx: usize,
    /// Neighbour app index at placement time (IDLE if the sibling slot was
    /// free) — the state the prediction was made against.
    neighbor_at_start: usize,
    start_time: f64,
    /// Completed fraction of the task's work.
    progress: f64,
    /// Work fraction per second under the current neighbour.
    rate: f64,
    /// Served I/O rate under the current neighbour.
    iops_rate: f64,
    /// Accumulated I/O operations.
    io_ops: f64,
    last_update: f64,
    version: u64,
}

/// The simulator.
pub struct Simulation<'tb> {
    testbed: &'tb Testbed,
    /// Number of physical machines.
    pub n_machines: usize,
    /// VM slots per machine (the paper uses 2).
    pub slots_per_machine: usize,
    /// Scheduling algorithm.
    pub scheduler: SchedulerKind,
    /// Optimization objective.
    pub objective: Objective,
    /// Override predictor (e.g. the oracle); defaults to the testbed's.
    predictor_override: Option<&'tb tracon_core::Predictor>,
    /// Admission-queue capacity: arrivals beyond this bound are refused
    /// (`None` = unbounded buffering).
    pub queue_capacity: Option<usize>,
    collect_observations: bool,
}

impl<'tb> Simulation<'tb> {
    /// Creates a simulator over a built testbed.
    pub fn new(testbed: &'tb Testbed, n_machines: usize, scheduler: SchedulerKind) -> Self {
        Simulation {
            testbed,
            n_machines,
            slots_per_machine: 2,
            scheduler,
            objective: Objective::MinRuntime,
            predictor_override: None,
            queue_capacity: None,
            collect_observations: false,
        }
    }

    /// Sets the optimization objective.
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Uses a different prediction module (e.g. the measured-statistics
    /// oracle, or a WMM/LM-backed predictor for the Fig 4 comparison).
    pub fn with_predictor(mut self, predictor: &'tb tracon_core::Predictor) -> Self {
        self.predictor_override = Some(predictor);
        self
    }

    /// Bounds the admission queue: arrivals finding the queue full are
    /// refused (counted in `arrived` but never scheduled).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = Some(capacity);
        self
    }

    /// Collects per-task realized observations (the monitor's feedback
    /// stream) into [`SimResult::observations`].
    pub fn with_observation_collection(mut self) -> Self {
        self.collect_observations = true;
        self
    }

    /// Runs the simulation over an arrival trace. `horizon_s` bounds the
    /// simulated time for dynamic scenarios (`None` runs to completion).
    pub fn run(&self, trace: &[ArrivalEvent], horizon_s: Option<f64>) -> SimResult {
        let perf = &self.testbed.perf;
        let names = &perf.names;
        let mut scheduler = self.scheduler.build();
        let predictor = self.predictor_override.unwrap_or(&self.testbed.predictor);
        let scoring = ScoringPolicy::new(predictor, self.objective);
        let mut cluster = ClusterState::new(
            self.n_machines,
            self.slots_per_machine,
            self.testbed.app_chars.clone(),
        );

        // Intern the perf-table app names once; every task constructed in
        // the arrival loop reuses these ids (no per-arrival allocation).
        let app_ids: Vec<tracon_core::AppId> = names
            .iter()
            .map(|n| cluster.registry().expect_id(n))
            .collect();

        let n_slots = self.n_machines * self.slots_per_machine;
        let mut slots: Vec<Option<Running>> = vec![None; n_slots];
        let slot_index = |vm: VmRef| -> usize { vm.machine * self.slots_per_machine + vm.slot };

        let mut events = BinaryHeap::with_capacity(trace.len() + n_slots);
        let mut seq = 0u64;
        for (i, a) in trace.iter().enumerate() {
            events.push(Event {
                time: a.time,
                seq,
                kind: EventKind::Arrival(i),
            });
            seq += 1;
        }

        let mut queue: VecDeque<Task> = VecDeque::new();
        // Arrival times by task id, for wait-time accounting.
        let arrival_time: Vec<f64> = trace.iter().map(|a| a.time).collect();

        let mut completed = 0usize;
        let mut total_runtime = 0.0f64;
        let mut total_iops = 0.0f64;
        let mut makespan = 0.0f64;
        let mut wait_sum = 0.0f64;
        let mut wait_count = 0usize;
        let mut refused = 0usize;
        let mut observations: Vec<TaskObservation> = Vec::new();
        // Profile features per app index, for observation records.
        let app_features: Vec<[f64; 4]> = names
            .iter()
            .map(|n| self.testbed.app_chars[n].as_array())
            .collect();

        // --- helpers --------------------------------------------------
        let neighbor_app = |slots: &[Option<Running>], vm: VmRef| -> usize {
            // With two slots per machine there is at most one neighbour;
            // with more, the most I/O-intensive one dominates (documented
            // approximation for >2-slot extensions).
            let mut best = IDLE;
            let mut best_iops = -1.0f64;
            for s in 0..self.slots_per_machine {
                if s == vm.slot {
                    continue;
                }
                if let Some(r) = &slots[vm.machine * self.slots_per_machine + s] {
                    let io = perf.solo_iops(r.app_idx);
                    if io > best_iops {
                        best_iops = io;
                        best = r.app_idx;
                    }
                }
            }
            best
        };

        macro_rules! refresh_slot {
            ($vm:expr, $now:expr, $events:expr, $seq:expr, $slots:expr) => {{
                let vm: VmRef = $vm;
                let nb = neighbor_app(&$slots, vm);
                let idx = slot_index(vm);
                if let Some(r) = &mut $slots[idx] {
                    let dt = $now - r.last_update;
                    r.progress += r.rate * dt;
                    r.io_ops += r.iops_rate * dt;
                    r.last_update = $now;
                    r.rate = perf.rate(r.app_idx, nb);
                    r.iops_rate = perf.iops(r.app_idx, nb);
                    r.version += 1;
                    let remaining = (1.0 - r.progress).max(0.0);
                    let eta = $now + remaining / r.rate.max(1e-12);
                    $events.push(Event {
                        time: eta,
                        seq: $seq,
                        kind: EventKind::Completion {
                            vm,
                            version: r.version,
                        },
                    });
                    $seq += 1;
                }
            }};
        }

        // --- main loop ------------------------------------------------
        while let Some(ev) = events.pop() {
            let now = ev.time;
            if let Some(h) = horizon_s {
                if now > h {
                    break;
                }
            }
            #[allow(unused_assignments)]
            let mut schedule_needed = false;
            match ev.kind {
                EventKind::Arrival(i) => {
                    let a = &trace[i];
                    let admitted = match self.queue_capacity {
                        Some(cap) => queue.len() < cap,
                        None => true,
                    };
                    if admitted {
                        queue.push_back(Task::new(i as u64, app_ids[a.app_idx]));
                        schedule_needed = true;
                    } else {
                        refused += 1;
                    }
                }
                EventKind::Completion { vm, version } => {
                    let idx = slot_index(vm);
                    let valid = matches!(&slots[idx], Some(r) if r.version == version);
                    if !valid {
                        continue; // stale event from before a neighbour change
                    }
                    let r = slots[idx].take().expect("validated above");
                    let runtime = now - r.start_time;
                    completed += 1;
                    total_runtime += runtime;
                    let final_ops = r.io_ops + r.iops_rate * (now - r.last_update);
                    let avg_iops = final_ops / runtime.max(1e-9);
                    total_iops += avg_iops;
                    if self.collect_observations {
                        let t = app_features[r.app_idx];
                        let nb = if r.neighbor_at_start == IDLE {
                            [0.0; 4]
                        } else {
                            app_features[r.neighbor_at_start]
                        };
                        observations.push(TaskObservation {
                            features: [t[0], t[1], t[2], t[3], nb[0], nb[1], nb[2], nb[3]],
                            runtime,
                            iops: avg_iops,
                        });
                    }
                    makespan = makespan.max(now);
                    cluster.clear(vm);
                    // The surviving sibling speeds up (or a later placement
                    // slows it down again).
                    for s in 0..self.slots_per_machine {
                        if s != vm.slot {
                            refresh_slot!(
                                VmRef {
                                    machine: vm.machine,
                                    slot: s
                                },
                                now,
                                events,
                                seq,
                                slots
                            );
                        }
                    }
                    schedule_needed = true;
                }
            }

            // Batch schedulers wait until their queue window fills (the
            // paper: "the scheduling process takes place when the queue
            // that holds the incoming tasks is full") — the waiting both
            // widens the pairing choice and lets free slots accumulate so
            // pairs can land together on one machine. Once the arrival
            // trace is exhausted the remaining tasks drain regardless.
            // A batch scheduler fires when its window is full, when the
            // arrival trace is exhausted (drain), when an entirely idle
            // machine is available (placing there is never regrettable),
            // or when at least two slots are free (a pairing opportunity
            // already exists, so waiting for more queue only burns
            // utilization — measurably ~5% of throughput on benign
            // workloads). A single free slot with a short queue waits for
            // either more tasks (choice) or another slot (pairing).
            let window_ready = match self.scheduler.batch_window() {
                Some(w) => {
                    queue.len() >= w
                        || events.is_empty()
                        || cluster.has_idle_machine()
                        || cluster.n_free() >= 2
                }
                None => true,
            };
            // Simultaneous events (a static batch arriving at t = 0, or a
            // machine's two slots completing together) must all be
            // processed before the scheduler runs, or a batch scheduler
            // would see its window one task at a time.
            let more_now = events
                .peek()
                .map(|e| (e.time - now).abs() < 1e-12)
                .unwrap_or(false);
            if schedule_needed
                && window_ready
                && !more_now
                && !queue.is_empty()
                && cluster.n_free() > 0
            {
                // Batch schedulers only see their queue window.
                let assignments = match self.scheduler.batch_window() {
                    Some(window) if queue.len() > window => {
                        let mut head: VecDeque<Task> = queue.drain(..window).collect();
                        let out = scheduler.schedule(&mut head, &mut cluster, &scoring);
                        // Unscheduled window tasks return to the front.
                        while let Some(t) = head.pop_back() {
                            queue.push_front(t);
                        }
                        out
                    }
                    _ => scheduler.schedule(&mut queue, &mut cluster, &scoring),
                };
                for a in assignments {
                    let task_idx = a.task.id as usize;
                    let app_idx = trace[task_idx].app_idx;
                    let arr = arrival_time[task_idx];
                    wait_sum += now - arr;
                    wait_count += 1;
                    let idx = slot_index(a.vm);
                    debug_assert!(slots[idx].is_none(), "scheduler placed onto occupied slot");
                    let nb_at_start = neighbor_app(&slots, a.vm);
                    slots[idx] = Some(Running {
                        app_idx,
                        neighbor_at_start: nb_at_start,
                        start_time: now,
                        progress: 0.0,
                        rate: 1.0, // placeholder; refresh_slot sets it
                        iops_rate: 0.0,
                        io_ops: 0.0,
                        last_update: now,
                        version: 0,
                    });
                    refresh_slot!(a.vm, now, events, seq, slots);
                    // Existing neighbours now run against a new workload.
                    for s in 0..self.slots_per_machine {
                        if s != a.vm.slot {
                            let nvm = VmRef {
                                machine: a.vm.machine,
                                slot: s,
                            };
                            if slots[slot_index(nvm)].is_some() {
                                refresh_slot!(nvm, now, events, seq, slots);
                            }
                        }
                    }
                }
            }
        }

        SimResult {
            scheduler: self.scheduler.name(),
            arrived: trace.len(),
            completed,
            refused,
            total_runtime,
            total_iops,
            makespan,
            mean_wait: if wait_count > 0 {
                wait_sum / wait_count as f64
            } else {
                0.0
            },
            observations,
        }
    }
}

/// Speedup of a scheduler relative to FIFO (paper equation 5).
pub fn speedup(fifo: &SimResult, other: &SimResult) -> f64 {
    fifo.total_runtime / other.total_runtime.max(1e-9)
}

/// I/O throughput improvement relative to FIFO (paper equation 6).
pub fn io_boost(fifo: &SimResult, other: &SimResult) -> f64 {
    other.total_iops / fifo.total_iops.max(1e-9)
}

/// Normalized throughput relative to FIFO (Section 4.7).
pub fn normalized_throughput(fifo: &SimResult, other: &SimResult) -> f64 {
    other.completed as f64 / (fifo.completed as f64).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::{poisson_trace, static_batch, WorkloadMix};
    use crate::setup::tests::shared;

    #[test]
    fn static_batch_all_complete() {
        let tb = shared();
        let sim = Simulation::new(tb, 4, SchedulerKind::Fifo);
        let trace = static_batch(8, WorkloadMix::Uniform, 1);
        let r = sim.run(&trace, None);
        assert_eq!(r.arrived, 8);
        assert_eq!(r.completed, 8);
        assert!(r.total_runtime > 0.0);
        assert!(r.total_iops > 0.0);
        assert!(r.makespan > 0.0);
    }

    #[test]
    fn mibs_beats_fifo_on_static_medium() {
        // Averaged over several random batches: a single small batch can
        // favour FIFO by luck, but the mean must favour MIBS.
        let tb = shared();
        let mut speedups = Vec::new();
        for seed in 0..8u64 {
            let trace = static_batch(32, WorkloadMix::Medium, 40 + seed);
            let fifo = Simulation::new(tb, 16, SchedulerKind::Fifo).run(&trace, None);
            let mibs = Simulation::new(tb, 16, SchedulerKind::Mibs(32)).run(&trace, None);
            speedups.push(speedup(&fifo, &mibs));
        }
        let mean = tracon_stats::mean(&speedups);
        assert!(mean > 1.0, "mean MIBS speedup = {mean} ({speedups:?})");
    }

    #[test]
    fn remaining_work_rescaling_bounds_runtime() {
        // A task whose neighbour completes mid-flight must finish sooner
        // than the full-overlap pair runtime and no sooner than solo.
        let tb = shared();
        let trace = static_batch(2, WorkloadMix::Heavy, 3);
        let sim = Simulation::new(tb, 1, SchedulerKind::Fifo);
        let r = sim.run(&trace, None);
        assert_eq!(r.completed, 2);
        let a = trace[0].app_idx;
        let b = trace[1].app_idx;
        let solo = tb.perf.solo_runtime(a) + tb.perf.solo_runtime(b);
        let full_pair = tb.perf.runtime(a, b) + tb.perf.runtime(b, a);
        assert!(
            r.total_runtime >= solo * 0.99,
            "total {} below solo sum {solo}",
            r.total_runtime
        );
        assert!(
            r.total_runtime <= full_pair * 1.01,
            "total {} above full-overlap sum {full_pair}",
            r.total_runtime
        );
    }

    #[test]
    fn dynamic_low_lambda_everything_completes() {
        let tb = shared();
        // Very low arrival rate on a roomy cluster: every task finishes.
        let trace = poisson_trace(2.0, 1800.0, WorkloadMix::Light, 4);
        let sim = Simulation::new(tb, 16, SchedulerKind::Mios);
        let r = sim.run(&trace, Some(3600.0 * 10.0));
        assert_eq!(r.completed, r.arrived, "{r:?}");
        assert!(
            r.mean_wait < 1.0,
            "tasks should start immediately: {}",
            r.mean_wait
        );
    }

    #[test]
    fn dynamic_overload_queues_tasks() {
        let tb = shared();
        // Overloaded cluster: fewer completions than arrivals.
        let trace = poisson_trace(600.0, 600.0, WorkloadMix::Heavy, 5);
        let sim = Simulation::new(tb, 2, SchedulerKind::Fifo);
        let r = sim.run(&trace, Some(600.0));
        assert!(r.completed < r.arrived);
    }

    #[test]
    fn deterministic_given_trace() {
        let tb = shared();
        let trace = static_batch(12, WorkloadMix::Medium, 6);
        let a = Simulation::new(tb, 4, SchedulerKind::Mibs(8)).run(&trace, None);
        let b = Simulation::new(tb, 4, SchedulerKind::Mibs(8)).run(&trace, None);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.total_runtime, b.total_runtime);
    }

    #[test]
    fn objective_changes_behaviour() {
        // Averaged over batches: MIBS_IO's schedules must not lose total
        // IOPS relative to MIBS_RT's.
        let tb = shared();
        let mut rt_io = 0.0;
        let mut io_io = 0.0;
        for seed in 0..8u64 {
            let trace = static_batch(16, WorkloadMix::Medium, 60 + seed);
            let rt = Simulation::new(tb, 8, SchedulerKind::Mibs(16))
                .with_objective(Objective::MinRuntime)
                .run(&trace, None);
            let io = Simulation::new(tb, 8, SchedulerKind::Mibs(16))
                .with_objective(Objective::MaxIops)
                .run(&trace, None);
            assert_eq!(rt.completed, 16);
            assert_eq!(io.completed, 16);
            rt_io += rt.total_iops;
            io_io += io.total_iops;
        }
        assert!(
            io_io >= rt_io * 0.95,
            "MIBS_IO total IOPS {io_io} vs MIBS_RT {rt_io}"
        );
    }

    #[test]
    fn bounded_queue_refuses_overflow() {
        let tb = shared();
        // Overloaded 1-machine cluster with a 2-slot admission queue:
        // most arrivals must be refused, and conservation holds.
        let trace = poisson_trace(120.0, 1800.0, WorkloadMix::Medium, 21);
        let r = Simulation::new(tb, 1, SchedulerKind::Fifo)
            .with_queue_capacity(2)
            .run(&trace, Some(1800.0));
        assert!(r.refused > 0, "expected refusals: {r:?}");
        assert!(r.completed + r.refused <= r.arrived);
        // Unbounded runs never refuse.
        let r2 = Simulation::new(tb, 1, SchedulerKind::Fifo).run(&trace, Some(1800.0));
        assert_eq!(r2.refused, 0);
    }

    #[test]
    fn observation_collection_matches_completions() {
        let tb = shared();
        let trace = static_batch(8, WorkloadMix::Uniform, 31);
        let r = Simulation::new(tb, 4, SchedulerKind::Mibs(8))
            .with_observation_collection()
            .run(&trace, None);
        assert_eq!(r.observations.len(), r.completed);
        for obs in &r.observations {
            assert!(obs.runtime > 0.0);
            assert!(obs.iops >= 0.0);
            assert!(obs.features.iter().all(|f| f.is_finite()));
        }
        // Without the flag, no observations are collected.
        let r2 = Simulation::new(tb, 4, SchedulerKind::Mibs(8)).run(&trace, None);
        assert!(r2.observations.is_empty());
    }

    #[test]
    fn static_batch_is_scheduled_as_one_window() {
        // Same-instant arrivals must reach the batch scheduler together:
        // a full static batch lets MIBS pick globally, which shows up as
        // pairing decisions that single-task dispatch cannot make. We
        // check the mechanism directly: with a batch equal to capacity,
        // MIBS and the head-first ablation must produce *different*
        // assignments on a mixed batch (they coincide when the window
        // degenerates to one task at a time).
        let tb = shared();
        let trace = static_batch(16, WorkloadMix::Uniform, 41);
        let full = Simulation::new(tb, 8, SchedulerKind::Mibs(16)).run(&trace, None);
        let head = Simulation::new(
            tb,
            8,
            SchedulerKind::Ablation(tracon_core::MibsVariant::HeadFirst, 16),
        )
        .run(&trace, None);
        assert_eq!(full.completed, 16);
        assert_eq!(head.completed, 16);
        assert!(
            (full.total_runtime - head.total_runtime).abs() > 1e-6,
            "window scheduling should differ from head-first dispatch"
        );
    }

    #[test]
    fn scheduler_kind_names() {
        assert_eq!(SchedulerKind::Fifo.name(), "FIFO");
        assert_eq!(SchedulerKind::Mibs(8).name(), "MIBS_8");
        assert_eq!(SchedulerKind::Mix(4).name(), "MIX_4");
        assert_eq!(SchedulerKind::Mios.batch_window(), None);
        assert_eq!(SchedulerKind::Mibs(8).batch_window(), Some(8));
    }
}
