//! End-to-end testbed construction: runs the profiling campaign on the
//! virtualized-host simulator, trains the interference models, and
//! packages everything the data-center simulation needs (predictor +
//! measured pair-performance table).
//!
//! Building the full campaign (8 applications x 126 calibration
//! workloads, plus the 8x8 pair matrix) takes a few seconds in release
//! mode; the profiling runs are spread across threads with crossbeam.

use crate::perf::PerfTable;
use std::collections::HashMap;
use tracon_core::{AppModelSet, AppProfile, Characteristics, ModelKind, Predictor, TrainingData};
use tracon_vmsim::{apps, AppModel, Benchmark, Engine, HostConfig, ProfileSet, Profiler};

/// Configuration of the testbed construction.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// Host configuration for the profiling runs.
    pub host: HostConfig,
    /// Time-scale applied to every benchmark (1.0 = full length; tests
    /// use ~0.05 for speed — interference ratios are scale-invariant).
    pub time_scale: f64,
    /// Model family used for the deployed predictor.
    pub model_kind: ModelKind,
    /// How many of the 125 calibration workloads to profile against
    /// (stride-sampled; 125 = all).
    pub calibration_points: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl TestbedConfig {
    /// Full-fidelity campaign (experiments).
    pub fn full() -> Self {
        TestbedConfig {
            host: HostConfig::testbed(),
            time_scale: 1.0,
            model_kind: ModelKind::Nonlinear,
            calibration_points: 125,
            seed: 0x7EAC0,
        }
    }

    /// Reduced campaign for fast tests: shortened benchmarks and a
    /// stride-sampled calibration grid.
    pub fn small() -> Self {
        TestbedConfig {
            host: HostConfig::testbed(),
            time_scale: 0.08,
            model_kind: ModelKind::Nonlinear,
            calibration_points: 30,
            seed: 0x7EAC0,
        }
    }

    /// Chooses a different deployed model family.
    pub fn with_model(mut self, kind: ModelKind) -> Self {
        self.model_kind = kind;
        self
    }
}

/// Everything the data-center simulation needs.
pub struct Testbed {
    /// The prediction module (profiles + trained models per application).
    pub predictor: Predictor,
    /// The measured pair-performance statistics the simulator replays.
    pub perf: PerfTable,
    /// Canonical monitor characteristics per application (solo profile).
    pub app_chars: HashMap<String, Characteristics>,
    /// Raw profiling sets (kept for the model-accuracy experiments).
    pub profiles: Vec<ProfileSet>,
}

fn to_characteristics(o: &tracon_vmsim::VmObservation) -> Characteristics {
    Characteristics::new(o.read_rps, o.write_rps, o.cpu_util, o.dom0_util)
}

/// Converts a vmsim profile set into core training data for a response.
pub fn training_data(set: &ProfileSet, response: tracon_core::Response) -> TrainingData {
    let mut data = TrainingData::default();
    for r in &set.records {
        let y = match response {
            tracon_core::Response::Runtime => r.runtime,
            tracon_core::Response::Iops => r.iops,
        };
        data.push(r.features, y);
    }
    data
}

/// Builds the stride-sampled calibration workload list.
pub fn calibration_workloads(points: usize) -> Vec<AppModel> {
    let grid = apps::calibration_grid();
    if points >= grid.len() {
        return grid;
    }
    let stride = (grid.len() as f64 / points as f64).ceil() as usize;
    grid.into_iter().step_by(stride.max(1)).collect()
}

impl Testbed {
    /// Runs the full profiling campaign and trains the models.
    pub fn build(cfg: &TestbedConfig) -> Self {
        let models: Vec<AppModel> = Benchmark::ALL
            .iter()
            .map(|b| b.model().time_scaled(cfg.time_scale))
            .collect();
        let backgrounds = calibration_workloads(cfg.calibration_points);

        // Profile each benchmark against the calibration grid, one thread
        // per benchmark (the campaign is embarrassingly parallel).
        let profiler = Profiler::new(Engine::new(cfg.host));
        let mut profiles: Vec<Option<ProfileSet>> = (0..models.len()).map(|_| None).collect();
        crossbeam::thread::scope(|scope| {
            for (i, (slot, app)) in profiles.iter_mut().zip(&models).enumerate() {
                let profiler = &profiler;
                let backgrounds = &backgrounds;
                let seed = cfg.seed.wrapping_add(10_000 * (i as u64 + 1));
                scope.spawn(move |_| {
                    *slot = Some(profiler.profile(app, backgrounds, seed));
                });
            }
        })
        .expect("profiling threads panicked");
        let profiles: Vec<ProfileSet> = profiles.into_iter().map(|p| p.unwrap()).collect();

        // Measure the 8x8 pair matrix the simulator replays.
        let pair = profiler.pair_matrix(&models, cfg.seed.wrapping_add(99));
        let perf = PerfTable::from_pair_matrix(&pair);

        // Train the deployed models and assemble the predictor.
        let mut predictor = Predictor::new();
        let mut app_chars = HashMap::new();
        for set in &profiles {
            let runtime_data = training_data(set, tracon_core::Response::Runtime);
            let iops_data = training_data(set, tracon_core::Response::Iops);
            let runtime = tracon_core::train_model_scaled(
                cfg.model_kind,
                &runtime_data,
                tracon_core::ResponseScale::for_response(tracon_core::Response::Runtime),
            );
            let iops = tracon_core::train_model_scaled(
                cfg.model_kind,
                &iops_data,
                tracon_core::ResponseScale::for_response(tracon_core::Response::Iops),
            );
            let solo = to_characteristics(&set.solo);
            predictor.add_app(
                AppProfile {
                    name: set.target.clone(),
                    solo,
                    solo_runtime: set.solo_runtime,
                    solo_iops: set.solo_iops,
                },
                AppModelSet { runtime, iops },
            );
            app_chars.insert(set.target.clone(), solo);
        }

        Testbed {
            predictor,
            perf,
            app_chars,
            profiles,
        }
    }

    /// Application names in pair-table index order.
    pub fn app_names(&self) -> &[String] {
        &self.perf.names
    }

    /// Serializes the measured campaign data (profiles + pair matrix) to
    /// JSON. Models are not serialized — they retrain from the profiles in
    /// milliseconds on [`Testbed::from_snapshot_json`] — so a snapshot
    /// decouples the expensive profiling campaign from everything built
    /// on top of it.
    pub fn snapshot_json(&self) -> String {
        let snap = TestbedSnapshot {
            profiles: self.profiles.clone(),
            perf: self.perf.clone(),
        };
        serde_json::to_string(&snap).expect("testbed snapshot serialization cannot fail")
    }

    /// Rebuilds a testbed from [`Testbed::snapshot_json`] output,
    /// retraining the models with the given family.
    ///
    /// # Errors
    /// Returns a serde error message when the JSON is not a valid
    /// snapshot.
    pub fn from_snapshot_json(json: &str, model_kind: ModelKind) -> Result<Self, String> {
        let snap: TestbedSnapshot = serde_json::from_str(json).map_err(|e| e.to_string())?;
        let mut predictor = Predictor::new();
        let mut app_chars = HashMap::new();
        for set in &snap.profiles {
            let runtime = tracon_core::train_model_scaled(
                model_kind,
                &training_data(set, tracon_core::Response::Runtime),
                tracon_core::ResponseScale::for_response(tracon_core::Response::Runtime),
            );
            let iops = tracon_core::train_model_scaled(
                model_kind,
                &training_data(set, tracon_core::Response::Iops),
                tracon_core::ResponseScale::for_response(tracon_core::Response::Iops),
            );
            let solo = to_characteristics(&set.solo);
            predictor.add_app(
                AppProfile {
                    name: set.target.clone(),
                    solo,
                    solo_runtime: set.solo_runtime,
                    solo_iops: set.solo_iops,
                },
                AppModelSet { runtime, iops },
            );
            app_chars.insert(set.target.clone(), solo);
        }
        Ok(Testbed {
            predictor,
            perf: snap.perf,
            app_chars,
            profiles: snap.profiles,
        })
    }
}

/// Serializable form of a testbed's measured data.
#[derive(serde::Serialize, serde::Deserialize)]
struct TestbedSnapshot {
    profiles: Vec<ProfileSet>,
    perf: PerfTable,
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The small testbed is expensive enough that the test suite builds
    /// it once and shares it.
    pub(crate) fn shared() -> &'static Testbed {
        static TB: OnceLock<Testbed> = OnceLock::new();
        TB.get_or_init(|| Testbed::build(&TestbedConfig::small()))
    }

    #[test]
    fn builds_with_all_apps() {
        let tb = shared();
        assert_eq!(tb.perf.n_apps(), 8);
        assert_eq!(tb.profiles.len(), 8);
        for b in Benchmark::ALL {
            assert!(tb.predictor.knows(b.name()), "missing {}", b.name());
        }
    }

    #[test]
    fn pair_table_shows_io_interference() {
        let tb = shared();
        let pos = |n: &str| tb.perf.names.iter().position(|x| x == n).unwrap();
        let (video, email) = (pos("video"), pos("email"));
        // Two I/O-heavy apps hurt each other far more than an I/O-heavy
        // app paired with a light one.
        assert!(
            tb.perf.slowdown(video, video) > 1.5 * tb.perf.slowdown(video, email),
            "video|video {} vs video|email {}",
            tb.perf.slowdown(video, video),
            tb.perf.slowdown(video, email)
        );
    }

    #[test]
    fn predictor_orders_neighbours_sensibly() {
        let tb = shared();
        let video_chars = tb.app_chars["video"];
        let email_chars = tb.app_chars["email"];
        let rt_heavy = tb.predictor.predict_runtime("dedup", &video_chars);
        let rt_light = tb.predictor.predict_runtime("dedup", &email_chars);
        assert!(
            rt_heavy > rt_light,
            "dedup next to video ({rt_heavy}) should be slower than next to email ({rt_light})"
        );
    }

    #[test]
    fn calibration_sampling_strides() {
        assert_eq!(calibration_workloads(125).len(), 125);
        let some = calibration_workloads(30);
        assert!(some.len() >= 25 && some.len() <= 45, "{}", some.len());
    }

    #[test]
    fn snapshot_roundtrip_preserves_behaviour() {
        let tb = shared();
        let json = tb.snapshot_json();
        let tb2 = Testbed::from_snapshot_json(&json, ModelKind::Nonlinear).unwrap();
        assert_eq!(tb2.perf.n_apps(), tb.perf.n_apps());
        // Same measured statistics (up to JSON float formatting).
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * (1.0 + a.abs());
        for a in 0..8 {
            assert!(close(tb2.perf.solo_runtime(a), tb.perf.solo_runtime(a)));
            for b in 0..8 {
                assert!(close(tb2.perf.runtime(a, b), tb.perf.runtime(a, b)));
            }
        }
        // Retrained models agree on predictions.
        let bg = tb.app_chars["video"];
        let p1 = tb.predictor.predict_runtime("dedup", &bg);
        let p2 = tb2.predictor.predict_runtime("dedup", &bg);
        assert!(close(p1, p2), "{p1} vs {p2}");
    }

    #[test]
    fn snapshot_rejects_garbage() {
        assert!(Testbed::from_snapshot_json("{not json", ModelKind::Wmm).is_err());
    }

    #[test]
    fn training_data_extraction() {
        let tb = shared();
        let set = &tb.profiles[0];
        let rt = training_data(set, tracon_core::Response::Runtime);
        let io = training_data(set, tracon_core::Response::Iops);
        assert_eq!(rt.len(), set.records.len());
        assert_eq!(io.len(), set.records.len());
        assert!(rt.responses.iter().all(|&y| y > 0.0));
    }
}
