//! # tracon-dcsim
//!
//! The discrete-event data-center simulator that evaluates TRACON at
//! scale (paper Section 4.2): 8 to 10,000 machines, two VMs each, static
//! and dynamic (Poisson) workloads. Running tasks progress at rates taken
//! from the *measured* pair-performance table produced by the
//! `tracon-vmsim` testbed, with remaining-work rescaling whenever a
//! neighbour changes.
//!
//! * [`setup`] — profiles the 8 benchmarks, trains the models, builds the
//!   predictor and the measured pair table,
//! * [`perf`] — the replayable pair-performance statistics,
//! * [`arrival`] — light/medium/heavy Gaussian rank mixes and Poisson
//!   arrival traces,
//! * [`engine`] — the event-driven simulation and the paper's metrics
//!   (Speedup, IOBoost, normalized throughput),
//! * [`faults`] — seeded, deterministic fault plans (machine MTTF/MTTR
//!   churn, per-attempt task failures, stragglers) injected through the
//!   event kernel,
//! * [`machines`] — heterogeneous machine classes: per-class solo
//!   factors and a shared-bandwidth network dimension on remote-storage
//!   hosts,
//! * [`experiments`] — one driver per table/figure of the evaluation.

#![warn(missing_docs)]

pub mod arrival;
pub mod engine;
pub mod experiments;
pub mod faults;
pub mod machines;
pub mod oracle;
pub mod perf;
pub mod setup;

pub use arrival::{poisson_n, poisson_trace, static_batch, ArrivalEvent, WorkloadMix};
pub use engine::{
    io_boost, normalized_throughput, speedup, AdaptiveObserver, ArrivalInfo, CompletionInfo,
    MachineCrashInfo, PlacementInfo, QueueBackend, SchedulerKind, SimObserver, SimResult,
    Simulation, TaskFailureInfo, TaskObservation,
};
pub use faults::{FaultConfig, FaultPlan, MachineFaultEvent};
pub use machines::MachineClassConfig;
pub use oracle::oracle_predictor;
pub use perf::{PerfTable, IDLE};
pub use setup::{Testbed, TestbedConfig};
