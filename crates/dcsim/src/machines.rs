//! Heterogeneous machine-class configuration for the data-center
//! simulator: which hardware class each machine belongs to, and how much
//! storage-network traffic each I/O moves on remote-storage classes.
//!
//! The paper's testbed fakes iSCSI as "a slower disk"; the machine-class
//! configuration generalizes that into a real shared-bandwidth network
//! dimension. A remote class slows every resident by its solo
//! `runtime_factor` *times* an M/M/1 contention factor of the shared
//! link, where the offered load is the sum of the residents' per-app
//! demand (`solo_iops x kb_per_io`). A configuration whose classes are
//! all [`MachineClass::local`] — or whose `kb_per_io` is zero on
//! unit-factor classes — replays every legacy scenario bit-identically.

use tracon_core::MachineClass;

/// The machine classes of a simulated cluster.
#[derive(Debug, Clone)]
pub struct MachineClassConfig {
    /// The class table; [`MachineClassConfig::assignment`] indexes it.
    pub classes: Vec<MachineClass>,
    /// Class index per machine (`assignment[m]` is machine `m`'s class).
    pub assignment: Vec<u16>,
    /// KB moved across a remote class's shared link per I/O request —
    /// the conversion from the perf table's solo IOPS to an offered link
    /// load in MB/s. Zero disables the network dimension's demand.
    pub kb_per_io: f64,
}

impl MachineClassConfig {
    /// A homogeneous, reference-class cluster (the legacy setting).
    pub fn homogeneous(n_machines: usize) -> Self {
        MachineClassConfig {
            classes: vec![MachineClass::local()],
            assignment: vec![0; n_machines],
            kb_per_io: 0.0,
        }
    }

    /// A mixed local/remote-storage cluster: even machines are the
    /// reference class, odd machines belong to `remote` and push
    /// `kb_per_io` KB per I/O through their shared link.
    pub fn mixed(n_machines: usize, remote: MachineClass, kb_per_io: f64) -> Self {
        MachineClassConfig {
            classes: vec![MachineClass::local(), remote],
            assignment: (0..n_machines).map(|m| (m % 2) as u16).collect(),
            kb_per_io,
        }
    }

    /// Number of machines assigned to class `index`.
    pub fn count_of(&self, index: u16) -> usize {
        self.assignment.iter().filter(|&&c| c == index).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_is_all_reference() {
        let cfg = MachineClassConfig::homogeneous(4);
        assert_eq!(cfg.classes.len(), 1);
        assert!(cfg.classes[0].is_reference());
        assert_eq!(cfg.count_of(0), 4);
        assert_eq!(cfg.kb_per_io, 0.0);
    }

    #[test]
    fn mixed_alternates_classes() {
        let remote = MachineClass::remote("iscsi", 2.0, 0.5, 60.0);
        let cfg = MachineClassConfig::mixed(5, remote, 64.0);
        assert_eq!(cfg.assignment, vec![0, 1, 0, 1, 0]);
        assert_eq!(cfg.count_of(0), 3);
        assert_eq!(cfg.count_of(1), 2);
        assert_eq!(cfg.classes[1].name, "iscsi");
    }
}
