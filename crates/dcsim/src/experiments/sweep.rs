//! Shared dynamic-workload sweep machinery for Figs 9-12: the (mix, λ)
//! grid evaluation normalized against FIFO, and the common point-table
//! rendering. Each figure module supplies its own parameter grid and
//! result wrapper on top of [`dynamic_sweep`].

use crate::arrival::{poisson_trace, WorkloadMix};
use crate::engine::{SchedulerKind, Simulation};
use crate::setup::Testbed;
use std::fmt::Write as _;
use tracon_core::Objective;
use tracon_stats::Summary;

/// Simulated horizon: ten hours (paper).
pub const HORIZON_S: f64 = 10.0 * 3600.0;
/// Cluster size (paper: 64 machines).
pub const MACHINES: usize = 64;

/// One dynamic data point.
#[derive(Debug, Clone)]
pub struct DynamicPoint {
    /// Workload mix.
    pub mix: WorkloadMix,
    /// Scheduler.
    pub scheduler: SchedulerKind,
    /// Arrival rate, tasks/minute.
    pub lambda: f64,
    /// Number of machines.
    pub machines: usize,
    /// Throughput normalized to FIFO on the same trace.
    pub normalized_throughput: Summary,
    /// Raw completed-task counts (mean over repetitions).
    pub completed: f64,
}

/// Admission-queue capacity used for the dynamic scenarios: the paper's
/// dynamic system buffers incoming tasks in "the queue" whose length is
/// the schedulers' parameter; we bound the FIFO/MIOS buffer at the same
/// eight slots as the largest batch window so all schedulers face the
/// same admission pressure.
pub const QUEUE_CAPACITY: usize = 8;

/// Runs a dynamic sweep and normalizes each scheduler against FIFO on the
/// same arrival traces. Shared by Figs 9-12. Every scheduler runs with a
/// bounded admission queue (its batch window, or [`QUEUE_CAPACITY`] for
/// the online schedulers): under sustained overload an unbounded buffer
/// makes long-run throughput insensitive to placement quality (every
/// arrival is eventually served no matter how well it was paired), which
/// is not the regime the paper's Figs 9-12 describe.
///
/// Grid cells — (mix, λ) pairs — are independent, so the sweep evaluates
/// them on worker threads ([`tracon_core::par`]); results are identical
/// to the serial sweep for any thread count.
#[allow(clippy::too_many_arguments)] // a sweep is inherently a parameter grid
pub fn dynamic_sweep(
    testbed: &Testbed,
    machines: usize,
    lambdas: &[f64],
    mixes: &[WorkloadMix],
    schedulers: &[SchedulerKind],
    horizon_s: f64,
    repetitions: u64,
    seed: u64,
) -> Vec<DynamicPoint> {
    // One self-contained job per (mix, lambda) grid cell: the job
    // regenerates its repetition traces (seeded by the cell, so the trace
    // stream is independent of evaluation order), runs the FIFO baselines,
    // and evaluates every scheduler against them. Cells share nothing
    // mutable, so they fan out over worker threads; flattening in job
    // order keeps the output ordering (mix-major, then lambda, then
    // scheduler) bit-identical to the serial loop for any thread count.
    let mut jobs = Vec::new();
    for &mix in mixes {
        for &lambda in lambdas {
            jobs.push((mix, lambda));
        }
    }
    let cells = tracon_core::par::map(jobs, |(mix, lambda)| {
        // FIFO baselines per repetition.
        let mut fifo_completed = Vec::new();
        let mut traces = Vec::new();
        for rep in 0..repetitions {
            let s = seed
                .wrapping_add(rep * 7919)
                .wrapping_add((lambda * 10.0) as u64)
                .wrapping_add(mix as u64 * 65537);
            let trace = poisson_trace(lambda, horizon_s, mix, s);
            let fifo = Simulation::new(testbed, machines, SchedulerKind::Fifo)
                .with_queue_capacity(QUEUE_CAPACITY)
                .run(&trace, Some(horizon_s));
            fifo_completed.push(fifo.completed.max(1) as f64);
            traces.push(trace);
        }
        let mut cell = Vec::with_capacity(schedulers.len());
        for &kind in schedulers {
            let mut ratios = Vec::new();
            let mut completed_sum = 0.0;
            for (rep, trace) in traces.iter().enumerate() {
                // Every scheduler faces the same admission buffer; the
                // batch window is the scheduler's own parameter.
                let r = Simulation::new(testbed, machines, kind)
                    .with_objective(Objective::MinRuntime)
                    .with_queue_capacity(QUEUE_CAPACITY)
                    .run(trace, Some(horizon_s));
                ratios.push(r.completed as f64 / fifo_completed[rep]);
                completed_sum += r.completed as f64;
            }
            cell.push(DynamicPoint {
                mix,
                scheduler: kind,
                lambda,
                machines,
                normalized_throughput: tracon_stats::summarize(&ratios),
                completed: completed_sum / repetitions as f64,
            });
        }
        cell
    });
    cells.into_iter().flatten().collect()
}

/// Renders a dynamic point table (shared by Figs 9-12).
pub fn render_points(title: &str, points: &[DynamicPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:>8} {:>10} {:>10} {:>10} {:>22} {:>12}",
        "mix", "scheduler", "machines", "lambda", "norm. throughput", "completed"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:>8} {:>10} {:>10} {:>10.0} {:>22} {:>12.0}",
            p.mix.name(),
            p.scheduler.name(),
            p.machines,
            p.lambda,
            super::fmt_pm(
                p.normalized_throughput.mean,
                p.normalized_throughput.std_dev
            ),
            p.completed,
        );
    }
    out
}

/// Prints a dynamic point table (shared by Figs 9-12).
pub fn print_points(title: &str, points: &[DynamicPoint]) {
    print!("{}", render_points(title, points));
}
