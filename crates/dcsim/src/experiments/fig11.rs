//! Fig 11: scalability — normalized throughputs of MIBS_8, MIOS, and
//! MIX_8 as the cluster grows from 8 to 1,024 machines at a fixed high
//! arrival rate, plus the paper's 10,000-machine sidebar.
//!
//! Paper shape: MIBS_8's throughput is close to MIX_8's and the gap
//! narrows with machine count; MIOS improves the least. At 10,000
//! machines and proportionally scaled λ, MIBS_8 keeps a ~40% improvement
//! on the medium mix.

use super::fig9::SCHEDULERS;
use super::sweep::{dynamic_sweep, render_points, DynamicPoint, HORIZON_S};
use crate::arrival::WorkloadMix;
use crate::engine::SchedulerKind;
use crate::setup::Testbed;

/// Machine counts swept (paper: 8 to 1,024).
pub const MACHINE_COUNTS: [usize; 8] = [8, 16, 32, 64, 128, 256, 512, 1024];

/// Fixed arrival rate for the sweep, tasks/minute. (Rescaled with the
/// testbed time scale like the Fig 9 λ axis; saturates the small clusters
/// and approaches capacity at 1,024 machines, as in the paper at
/// λ = 1,000.)
pub const LAMBDA: f64 = 500.0;

/// The Fig 11 result.
#[derive(Debug, Clone)]
pub struct Fig11 {
    /// All swept points.
    pub points: Vec<DynamicPoint>,
}

/// Runs the Fig 11 sweep (medium mix, as in the scalability discussion).
pub fn run(
    testbed: &Testbed,
    machine_counts: &[usize],
    lambda: f64,
    repetitions: u64,
    seed: u64,
) -> Fig11 {
    let mut points = Vec::new();
    for &machines in machine_counts {
        points.extend(dynamic_sweep(
            testbed,
            machines,
            &[lambda],
            &[WorkloadMix::Medium],
            &SCHEDULERS,
            HORIZON_S,
            repetitions,
            seed.wrapping_add(machines as u64),
        ));
    }
    Fig11 { points }
}

/// The 10,000-machine scalability check (λ scaled by 10x relative to the
/// 1,024-machine sweep, as the paper scales λ = 1,000 to λ = 10,000).
pub fn run_10k(testbed: &Testbed, seed: u64) -> DynamicPoint {
    let mut points = dynamic_sweep(
        testbed,
        10_000,
        &[LAMBDA * 10.0],
        &[WorkloadMix::Medium],
        &[SchedulerKind::Mibs(8)],
        HORIZON_S,
        1,
        seed,
    );
    points.pop().expect("one point requested")
}

impl Fig11 {
    /// Renders the figure's series.
    pub fn render(&self) -> String {
        render_points(
            &format!(
                "Fig 11: normalized throughput vs machines (lambda = {LAMBDA}/min, medium mix)"
            ),
            &self.points,
        )
    }

    /// Prints the figure's series.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Normalized throughput for a (scheduler, machines) pair.
    pub fn point(&self, scheduler: SchedulerKind, machines: usize) -> Option<&DynamicPoint> {
        self.points
            .iter()
            .find(|p| p.scheduler == scheduler && p.machines == machines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::tests::shared;

    #[test]
    fn sweep_produces_all_points() {
        let tb = shared();
        let fig = run(tb, &[8, 16], 30.0, 2, 23);
        assert_eq!(fig.points.len(), 6);
        for p in &fig.points {
            assert!(p.normalized_throughput.mean > 0.5);
            assert!(p.completed > 0.0);
        }
    }

    #[test]
    fn mibs_tracks_mix_under_saturation() {
        let tb = shared();
        let fig = run(tb, &[8], 40.0, 3, 29);
        let mibs = fig.point(SchedulerKind::Mibs(8), 8).unwrap();
        let mix = fig.point(SchedulerKind::Mix(8), 8).unwrap();
        // Paper: MIBS_8's throughput is close to MIX_8's.
        assert!(
            (mibs.normalized_throughput.mean - mix.normalized_throughput.mean).abs() < 0.25,
            "MIBS {} vs MIX {}",
            mibs.normalized_throughput.mean,
            mix.normalized_throughput.mean
        );
    }
}
