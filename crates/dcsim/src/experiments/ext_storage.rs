//! Extension experiment (the paper's future work, Section 5): "we will
//! explore I/O interference effects on various storage devices, e.g.,
//! RAID and solid-state drives (SSD), as well as network storage
//! systems."
//!
//! We repeat the Table 1 motivating measurement and the worst benchmark
//! pairing on four devices — the local SATA disk, a 4-disk RAID-0
//! stripe, an SSD, and the congested iSCSI path — and quantify how much
//! room each device leaves an interference-aware scheduler (the best/
//! worst pairing spread of the I/O-heaviest application).

use tracon_vmsim::{apps, Benchmark, Engine, HostConfig};

/// Interference summary for one storage device.
#[derive(Debug, Clone)]
pub struct StorageRow {
    /// Device label.
    pub device: &'static str,
    /// SeqRead slowdown next to the I/O-high synthetic neighbour
    /// (Table 1's worst pure-I/O cell).
    pub seqread_io_high: f64,
    /// video slowdown next to dedup (the worst measured benchmark pair on
    /// the SATA testbed).
    pub video_vs_dedup: f64,
    /// video slowdown next to email (the best pairing).
    pub video_vs_email: f64,
    /// Scheduling room: worst-pair / best-pair slowdown ratio for video.
    pub room: f64,
}

/// The extension-experiment result.
#[derive(Debug, Clone)]
pub struct ExtStorage {
    /// One row per device.
    pub rows: Vec<StorageRow>,
}

/// Runs the storage sweep. `time_scale` shortens the benchmarks.
pub fn run(time_scale: f64, seed: u64) -> ExtStorage {
    let devices: [(&'static str, HostConfig); 4] = [
        ("SATA disk", HostConfig::testbed()),
        ("RAID-0 x4", HostConfig::class("raid0x4")),
        ("SSD", HostConfig::class("ssd")),
        ("iSCSI", HostConfig::class("iscsi")),
    ];
    let video = Benchmark::Video.model().time_scaled(time_scale);
    let dedup = Benchmark::Dedup.model().time_scaled(time_scale);
    let email = Benchmark::Email.model().time_scaled(time_scale);

    let mut rows = Vec::new();
    for (device, host) in devices {
        let engine = Engine::new(host);
        // Table 1 cell: SeqRead vs I/O-high.
        let sr = apps::seq_read().time_scaled(time_scale);
        let sr_solo = engine.solo_run(&sr, seed).runtime[0];
        let sr_io = engine
            .co_run(&sr, &apps::synthetic(0.0, 1.0, 1.0), seed.wrapping_add(1))
            .runtime[0];
        // Benchmark pair extremes for video.
        let v_solo = engine.solo_run(&video, seed.wrapping_add(2)).runtime[0];
        let v_dedup = engine
            .co_run(&video, &dedup.as_endless(), seed.wrapping_add(3))
            .runtime[0];
        let v_email = engine
            .co_run(&video, &email.as_endless(), seed.wrapping_add(4))
            .runtime[0];
        let video_vs_dedup = v_dedup / v_solo;
        let video_vs_email = v_email / v_solo;
        rows.push(StorageRow {
            device,
            seqread_io_high: sr_io / sr_solo,
            video_vs_dedup,
            video_vs_email,
            room: video_vs_dedup / video_vs_email.max(1e-9),
        });
    }
    ExtStorage { rows }
}

impl ExtStorage {
    /// Row by device label.
    pub fn row(&self, device: &str) -> Option<&StorageRow> {
        self.rows.iter().find(|r| r.device == device)
    }

    /// Renders the sweep.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "Storage extension: interference across device types");
        let _ = writeln!(
            out,
            "{:>10} {:>18} {:>16} {:>16} {:>12}",
            "device", "SeqRead|IO-high", "video|dedup", "video|email", "sched. room"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:>10} {:>17.2}x {:>15.2}x {:>15.2}x {:>11.2}x",
                r.device, r.seqread_io_high, r.video_vs_dedup, r.video_vs_email, r.room
            );
        }
        let _ = writeln!(
            out,
            "\n'sched. room' = worst/best pairing slowdown for the most I/O-intensive app:"
        );
        let _ = writeln!(
            out,
            "the spread an interference-aware scheduler can exploit on that device."
        );
        out
    }

    /// Prints the sweep.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssd_collapses_interference() {
        let fig = run(0.08, 3);
        let sata = fig.row("SATA disk").unwrap();
        let ssd = fig.row("SSD").unwrap();
        // Mechanical seek amplification disappears on the SSD.
        assert!(
            ssd.seqread_io_high < sata.seqread_io_high / 2.0,
            "SSD {} vs SATA {}",
            ssd.seqread_io_high,
            sata.seqread_io_high
        );
        assert!(
            ssd.room < sata.room,
            "SSD room {} vs SATA {}",
            ssd.room,
            sata.room
        );
    }

    #[test]
    fn raid_softens_but_does_not_remove_interference() {
        let fig = run(0.08, 4);
        let sata = fig.row("SATA disk").unwrap();
        let raid = fig.row("RAID-0 x4").unwrap();
        assert!(raid.video_vs_dedup < sata.video_vs_dedup);
        assert!(
            raid.video_vs_dedup > 1.02,
            "RAID still interferes: {}",
            raid.video_vs_dedup
        );
    }

    #[test]
    fn iscsi_remains_interference_prone() {
        let fig = run(0.08, 5);
        let iscsi = fig.row("iSCSI").unwrap();
        assert!(iscsi.room > 1.3, "iSCSI room {}", iscsi.room);
    }
}
