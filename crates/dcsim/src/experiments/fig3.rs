//! Fig 3: prediction errors of the LM, NLM, and WMM models on runtime
//! (a) and IOPS (b), per benchmark, with error bars — plus the paper's
//! Dom0 ablation ("without it, NLM would have much larger prediction
//! errors, e.g., twice as much for blastn").
//!
//! Paper shape: NLM ~10% across benchmarks; LM and WMM >= 20%, worst on
//! bursty-random applications (compile, web); NLM error bars small.

use crate::setup::{training_data, Testbed};
use tracon_core::model::training::cross_validate;
use tracon_core::{ModelKind, Response, ResponseScale};
use tracon_stats::Summary;

/// Prediction-error summary for one (benchmark, model) pair.
#[derive(Debug, Clone)]
pub struct ErrorCell {
    /// Benchmark name.
    pub app: String,
    /// Model family.
    pub kind: ModelKind,
    /// Relative-error summary (mean is the bar height, std the whisker).
    pub error: Summary,
}

/// The full Fig 3 result.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// Runtime prediction errors (Fig 3a).
    pub runtime: Vec<ErrorCell>,
    /// IOPS prediction errors (Fig 3b).
    pub iops: Vec<ErrorCell>,
}

/// Number of interleaved cross-validation folds.
pub const FOLDS: usize = 5;

/// Runs the Fig 3 evaluation on a built testbed.
pub fn run(testbed: &Testbed) -> Fig3 {
    let kinds = ModelKind::ALL;
    let mut runtime = Vec::new();
    let mut iops = Vec::new();
    for set in &testbed.profiles {
        let rt_data = training_data(set, Response::Runtime);
        let io_data = training_data(set, Response::Iops);
        for kind in kinds {
            // The paper excludes web's runtime (FileBench takes runtime as
            // an input), matching Fig 3a's missing bar.
            if set.target != "web" {
                runtime.push(ErrorCell {
                    app: set.target.clone(),
                    kind,
                    error: cross_validate(
                        kind,
                        &rt_data,
                        FOLDS,
                        ResponseScale::for_response(Response::Runtime),
                    ),
                });
            }
            iops.push(ErrorCell {
                app: set.target.clone(),
                kind,
                error: cross_validate(
                    kind,
                    &io_data,
                    FOLDS,
                    ResponseScale::for_response(Response::Iops),
                ),
            });
        }
    }
    Fig3 { runtime, iops }
}

impl Fig3 {
    /// Mean error of a model family over all benchmarks for a response.
    pub fn mean_error(&self, cells: &[ErrorCell], kind: ModelKind) -> f64 {
        let xs: Vec<f64> = cells
            .iter()
            .filter(|c| c.kind == kind)
            .map(|c| c.error.mean)
            .collect();
        tracon_stats::mean(&xs)
    }

    /// Error of a specific (app, kind) cell.
    pub fn cell<'a>(
        &'a self,
        cells: &'a [ErrorCell],
        app: &str,
        kind: ModelKind,
    ) -> Option<&'a ErrorCell> {
        cells.iter().find(|c| c.app == app && c.kind == kind)
    }

    fn render_panel(&self, label: &str, cells: &[ErrorCell]) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Fig 3{label}: prediction error (mean +- std of |pred-actual|/actual)"
        );
        let apps: Vec<&str> = {
            let mut seen = Vec::new();
            for c in cells {
                if !seen.contains(&c.app.as_str()) {
                    seen.push(&c.app);
                }
            }
            seen
        };
        let _ = write!(out, "{:10}", "benchmark");
        for kind in ModelKind::ALL {
            let _ = write!(out, " {:>22}", kind.name());
        }
        let _ = writeln!(out);
        for app in apps {
            let _ = write!(out, "{app:10}");
            for kind in ModelKind::ALL {
                match self.cell(cells, app, kind) {
                    Some(c) => {
                        let _ =
                            write!(out, " {:>22}", super::fmt_pm(c.error.mean, c.error.std_dev));
                    }
                    None => {
                        let _ = write!(out, " {:>22}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        for kind in ModelKind::ALL {
            let _ = writeln!(
                out,
                "  overall {:12}: {:.3}",
                kind.name(),
                self.mean_error(cells, kind)
            );
        }
        out
    }

    /// Renders both panels.
    pub fn render(&self) -> String {
        format!(
            "{}\n{}",
            self.render_panel("a (runtime)", &self.runtime),
            self.render_panel("b (IOPS)", &self.iops)
        )
    }

    /// Prints both panels.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::tests::shared;

    #[test]
    fn nlm_beats_lm_and_wmm_overall() {
        let tb = shared();
        let fig = run(tb);
        for cells in [&fig.runtime, &fig.iops] {
            let nlm = fig.mean_error(cells, ModelKind::Nonlinear);
            let lm = fig.mean_error(cells, ModelKind::Linear);
            let wmm = fig.mean_error(cells, ModelKind::Wmm);
            assert!(nlm < lm, "NLM {nlm} vs LM {lm}");
            // The shared test testbed profiles only ~30 calibration
            // points, where NLM and WMM are statistically tied; the
            // full 125-point campaign (see EXPERIMENTS.md) separates
            // them clearly. Require NLM not to lose materially here.
            assert!(nlm < wmm * 1.1, "NLM {nlm} vs WMM {wmm}");
        }
    }

    #[test]
    fn dom0_ablation_hurts() {
        let tb = shared();
        let fig = run(tb);
        let full = fig.mean_error(&fig.runtime, ModelKind::Nonlinear);
        let ablated = fig.mean_error(&fig.runtime, ModelKind::NonlinearNoDom0);
        assert!(
            ablated > full,
            "dropping Dom0 must increase error: full {full} vs ablated {ablated}"
        );
    }

    #[test]
    fn web_runtime_excluded() {
        let tb = shared();
        let fig = run(tb);
        assert!(fig
            .cell(&fig.runtime, "web", ModelKind::Nonlinear)
            .is_none());
        assert!(fig.cell(&fig.iops, "web", ModelKind::Nonlinear).is_some());
    }
}
