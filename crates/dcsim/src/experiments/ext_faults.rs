//! Extension experiment: scheduler comparison under churn.
//!
//! The paper's evaluation assumes machines never fail; production
//! clusters do not. This experiment replays one Poisson arrival trace
//! against every scheduler under one seeded [`FaultPlan`] — machine
//! MTTF/MTTR churn, per-attempt task failures, straggler slowdowns — and
//! reports how much throughput each scheduler keeps relative to its own
//! fault-free run. Interference-aware *re*-scheduling is exercised
//! directly: every crash eviction re-enters the admission queue and is
//! re-placed against the surviving machines' residents.
//!
//! Both the trace and the plan derive from the experiment seed, so the
//! whole report is bit-reproducible.

use crate::arrival::{poisson_trace, WorkloadMix};
use crate::engine::{SchedulerKind, SimResult, Simulation};
use crate::faults::{FaultConfig, FaultPlan};
use crate::setup::Testbed;

/// Parameters of the churn comparison.
#[derive(Debug, Clone)]
pub struct ExtFaultsConfig {
    /// Cluster size.
    pub machines: usize,
    /// Arrival rate, tasks per minute.
    pub lambda_per_min: f64,
    /// Arrival window, seconds.
    pub duration_s: f64,
    /// Simulation horizon, seconds (also the fault-plan horizon).
    pub horizon_s: f64,
    /// Seed for both the trace and the fault plan.
    pub seed: u64,
    /// The fault model.
    pub fault: FaultConfig,
}

impl ExtFaultsConfig {
    /// Test-sized: a small cluster under aggressive churn so every fault
    /// path fires within seconds of simulated time.
    pub fn small() -> Self {
        ExtFaultsConfig {
            machines: 8,
            lambda_per_min: 40.0,
            duration_s: 900.0,
            horizon_s: 1800.0,
            seed: 0xFA17,
            fault: FaultConfig {
                machine_mttf_s: 300.0,
                machine_mttr_s: 60.0,
                task_fail_prob: 0.08,
                max_attempts: 4,
                straggler_prob: 0.1,
                straggler_slowdown: 2.0,
            },
        }
    }

    /// Full-fidelity: an hour of arrivals on 32 machines with
    /// datacenter-plausible MTTF/MTTR.
    pub fn full() -> Self {
        ExtFaultsConfig {
            machines: 32,
            lambda_per_min: 60.0,
            duration_s: 3600.0,
            horizon_s: 7200.0,
            seed: 0xFA17,
            fault: FaultConfig::default(),
        }
    }
}

/// One scheduler's outcome under the shared fault plan.
#[derive(Debug, Clone)]
pub struct FaultRow {
    /// Scheduler display name.
    pub scheduler: String,
    /// The faulted run.
    pub faulted: SimResult,
    /// The same trace without the fault plan.
    pub fault_free: SimResult,
}

impl FaultRow {
    /// Completions under churn as a fraction of the fault-free run.
    pub fn retention(&self) -> f64 {
        self.faulted.completed as f64 / (self.fault_free.completed as f64).max(1.0)
    }
}

/// The churn-comparison result.
#[derive(Debug, Clone)]
pub struct ExtFaults {
    /// One row per scheduler (FIFO, MIOS, MIBS, MIX).
    pub rows: Vec<FaultRow>,
    /// Machine crash events within the horizon (same plan for all rows).
    pub planned_crashes: usize,
    cfg: ExtFaultsConfig,
}

/// Runs the comparison: one trace, one plan, every scheduler.
pub fn run(testbed: &Testbed, cfg: &ExtFaultsConfig) -> ExtFaults {
    let trace = poisson_trace(
        cfg.lambda_per_min,
        cfg.duration_s,
        WorkloadMix::Medium,
        cfg.seed,
    );
    let plan = FaultPlan::generate(cfg.fault, cfg.machines, cfg.horizon_s, cfg.seed);
    let planned_crashes = plan.machine_events.iter().filter(|e| !e.up).count();
    let kinds = [
        SchedulerKind::Fifo,
        SchedulerKind::Mios,
        SchedulerKind::Mibs(16),
        SchedulerKind::Mix(16),
    ];
    let rows = kinds
        .iter()
        .map(|&kind| {
            let fault_free =
                Simulation::new(testbed, cfg.machines, kind).run(&trace, Some(cfg.horizon_s));
            let faulted = Simulation::new(testbed, cfg.machines, kind)
                .with_faults(&plan)
                .run(&trace, Some(cfg.horizon_s));
            FaultRow {
                scheduler: kind.name(),
                faulted,
                fault_free,
            }
        })
        .collect();
    ExtFaults {
        rows,
        planned_crashes,
        cfg: cfg.clone(),
    }
}

impl ExtFaults {
    /// Row by scheduler display name.
    pub fn row(&self, scheduler: &str) -> Option<&FaultRow> {
        self.rows.iter().find(|r| r.scheduler == scheduler)
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Scheduling under churn: {} machines, lambda = {} tasks/min, \
             MTTF = {:.0}s, MTTR = {:.0}s, {} planned crashes, seed = {:#x}",
            self.cfg.machines,
            self.cfg.lambda_per_min,
            self.cfg.fault.machine_mttf_s,
            self.cfg.fault.machine_mttr_s,
            self.planned_crashes,
            self.cfg.seed,
        );
        let _ = writeln!(
            out,
            "{:>8} {:>10} {:>10} {:>9} {:>8} {:>8} {:>9} {:>10}",
            "sched",
            "completed",
            "no-fault",
            "retention",
            "failed",
            "requeued",
            "abandoned",
            "mean_wait"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:>8} {:>10} {:>10} {:>8.1}% {:>8} {:>8} {:>9} {:>9.1}s",
                r.scheduler,
                r.faulted.completed,
                r.fault_free.completed,
                r.retention() * 100.0,
                r.faulted.task_failures,
                r.faulted.requeues,
                r.faulted.abandoned,
                r.faulted.mean_wait,
            );
        }
        out
    }

    /// Prints the table.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::tests::shared;

    #[test]
    fn report_is_bit_reproducible() {
        let tb = shared();
        let cfg = ExtFaultsConfig::small();
        let a = run(tb, &cfg);
        let b = run(tb, &cfg);
        assert_eq!(a.render(), b.render());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(
                x.faulted.total_runtime.to_bits(),
                y.faulted.total_runtime.to_bits(),
                "{}",
                x.scheduler
            );
        }
    }

    #[test]
    fn churn_actually_bites_and_conservation_holds() {
        let tb = shared();
        let fig = run(tb, &ExtFaultsConfig::small());
        assert!(fig.planned_crashes > 0);
        for r in &fig.rows {
            assert!(r.faulted.machine_crashes > 0, "{}", r.scheduler);
            assert!(r.faulted.requeues > 0, "{}", r.scheduler);
            assert!(r.faulted.completed > 0, "{}", r.scheduler);
            assert_eq!(
                r.faulted.arrived,
                r.faulted.completed
                    + r.faulted.refused
                    + r.faulted.abandoned
                    + r.faulted.unfinished(),
                "{}",
                r.scheduler
            );
            // Churn cannot increase completions (same trace, same horizon).
            assert!(
                r.faulted.completed <= r.fault_free.completed,
                "{}: {} > {}",
                r.scheduler,
                r.faulted.completed,
                r.fault_free.completed
            );
        }
        // All four schedulers are present.
        for name in ["FIFO", "MIOS", "MIBS_16", "MIX_16"] {
            assert!(fig.row(name).is_some(), "{name} missing");
        }
    }
}
