//! Extension experiment: scheduling on a heterogeneous cluster with a
//! shared-bandwidth network dimension.
//!
//! The paper's testbed folds remote storage into "a slower disk"
//! (Section 4.6's iSCSI rows). This experiment promotes it to a first
//! class resource axis: half the machines keep local storage, the other
//! half reach their disks over a shared iSCSI link whose contention
//! follows an M/M/1 slowdown in the residents' combined offered load.
//! Every scheduler runs twice over the same traces — once with the class
//! table plugged into its scoring policy (network-aware) and once blind
//! to it (network-oblivious) — while the event kernel simulates the
//! classes as ground truth in both. The gap is the value of making the
//! interference model multi-axis.

use crate::arrival::{static_batch, WorkloadMix};
use crate::engine::{SchedulerKind, Simulation};
use crate::machines::MachineClassConfig;
use crate::setup::Testbed;
use tracon_core::MachineClass;

/// Parameters of the network-awareness comparison.
#[derive(Debug, Clone)]
pub struct ExtNetworkConfig {
    /// Cluster size (half local, half remote-storage).
    pub machines: usize,
    /// Tasks per batch.
    pub batch: usize,
    /// Batches averaged per scheduler.
    pub repetitions: u64,
    /// Base seed for the batch traces.
    pub seed: u64,
    /// The remote-storage class.
    pub remote: MachineClass,
    /// KB moved across the remote link per I/O request.
    pub kb_per_io: f64,
}

impl ExtNetworkConfig {
    /// Test-sized: a small mixed cluster, a few batches.
    pub fn small() -> Self {
        ExtNetworkConfig {
            machines: 8,
            batch: 24,
            repetitions: 5,
            seed: 0x2E7,
            remote: MachineClass::remote("iscsi", 2.0, 0.5, 60.0),
            kb_per_io: 64.0,
        }
    }

    /// Full-fidelity: a 32-machine mixed cluster, ten batches.
    pub fn full() -> Self {
        ExtNetworkConfig {
            machines: 32,
            batch: 96,
            repetitions: 10,
            seed: 0x2E7,
            remote: MachineClass::remote("iscsi", 2.0, 0.5, 60.0),
            kb_per_io: 64.0,
        }
    }
}

/// One scheduler's aware-versus-oblivious outcome (means over batches).
#[derive(Debug, Clone)]
pub struct NetworkRow {
    /// Scheduler display name.
    pub scheduler: String,
    /// Mean total runtime with class-aware scoring.
    pub aware_runtime: f64,
    /// Mean total runtime with class-oblivious scoring.
    pub oblivious_runtime: f64,
    /// Mean total IOPS with class-aware scoring.
    pub aware_iops: f64,
    /// Mean total IOPS with class-oblivious scoring.
    pub oblivious_iops: f64,
}

impl NetworkRow {
    /// Runtime improvement from network-awareness (>1 means the aware
    /// scheduler finished the same batches faster).
    pub fn gain(&self) -> f64 {
        self.oblivious_runtime / self.aware_runtime.max(1e-9)
    }
}

/// The comparison result.
#[derive(Debug, Clone)]
pub struct ExtNetwork {
    /// One row per scheduler (MIOS, MIBS, MIX).
    pub rows: Vec<NetworkRow>,
    cfg: ExtNetworkConfig,
}

/// Runs the comparison: same traces, same simulated hardware, scoring
/// with and without the machine-class table.
pub fn run(testbed: &Testbed, cfg: &ExtNetworkConfig) -> ExtNetwork {
    let classes = MachineClassConfig::mixed(cfg.machines, cfg.remote.clone(), cfg.kb_per_io);
    let kinds = [
        SchedulerKind::Mios,
        SchedulerKind::Mibs(cfg.batch),
        SchedulerKind::Mix(cfg.batch),
    ];
    let rows = kinds
        .iter()
        .map(|&kind| {
            let mut row = NetworkRow {
                scheduler: kind.name(),
                aware_runtime: 0.0,
                oblivious_runtime: 0.0,
                aware_iops: 0.0,
                oblivious_iops: 0.0,
            };
            for rep in 0..cfg.repetitions {
                let trace = static_batch(cfg.batch, WorkloadMix::Medium, cfg.seed + rep);
                let aware = Simulation::new(testbed, cfg.machines, kind)
                    .with_machine_classes(classes.clone())
                    .run(&trace, None);
                let oblivious = Simulation::new(testbed, cfg.machines, kind)
                    .with_machine_classes(classes.clone())
                    .with_network_oblivious_scoring()
                    .run(&trace, None);
                debug_assert_eq!(aware.completed, cfg.batch);
                debug_assert_eq!(oblivious.completed, cfg.batch);
                row.aware_runtime += aware.total_runtime;
                row.oblivious_runtime += oblivious.total_runtime;
                row.aware_iops += aware.total_iops;
                row.oblivious_iops += oblivious.total_iops;
            }
            let n = cfg.repetitions as f64;
            row.aware_runtime /= n;
            row.oblivious_runtime /= n;
            row.aware_iops /= n;
            row.oblivious_iops /= n;
            row
        })
        .collect();
    ExtNetwork {
        rows,
        cfg: cfg.clone(),
    }
}

impl ExtNetwork {
    /// Row by scheduler display name.
    pub fn row(&self, scheduler: &str) -> Option<&NetworkRow> {
        self.rows.iter().find(|r| r.scheduler == scheduler)
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Network-aware vs network-oblivious scheduling: {} machines \
             (half local, half {} at {:.0} MB/s shared link, {:.0} KB/IO), \
             {} x {} tasks, seed = {:#x}",
            self.cfg.machines,
            self.cfg.remote.name,
            self.cfg.remote.net_capacity_mb.unwrap_or(f64::INFINITY),
            self.cfg.kb_per_io,
            self.cfg.repetitions,
            self.cfg.batch,
            self.cfg.seed,
        );
        let _ = writeln!(
            out,
            "{:>8} {:>12} {:>12} {:>7} {:>11} {:>11}",
            "sched", "aware_rt", "oblivious", "gain", "aware_iops", "obliv_iops"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:>8} {:>11.0}s {:>11.0}s {:>6.2}x {:>11.1} {:>11.1}",
                r.scheduler,
                r.aware_runtime,
                r.oblivious_runtime,
                r.gain(),
                r.aware_iops,
                r.oblivious_iops,
            );
        }
        out
    }

    /// Prints the table.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::tests::shared;

    #[test]
    fn report_is_bit_reproducible() {
        let tb = shared();
        let cfg = ExtNetworkConfig::small();
        let a = run(tb, &cfg);
        let b = run(tb, &cfg);
        assert_eq!(a.render(), b.render());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(
                x.aware_runtime.to_bits(),
                y.aware_runtime.to_bits(),
                "{}",
                x.scheduler
            );
        }
    }

    #[test]
    fn network_awareness_pays_off_for_mix() {
        // The acceptance pin: on a mixed local/remote cluster the
        // class-aware MIX scheduler must beat its class-oblivious twin on
        // mean total runtime (averaged over the config's batches).
        let tb = shared();
        let cfg = ExtNetworkConfig::small();
        let fig = run(tb, &cfg);
        let mix = fig.row(&format!("MIX_{}", cfg.batch)).expect("MIX row");
        assert!(
            mix.gain() > 1.0,
            "network-aware MIX must beat oblivious MIX: aware {}s vs oblivious {}s",
            mix.aware_runtime,
            mix.oblivious_runtime
        );
        // All three schedulers are present and produced sane means.
        for r in &fig.rows {
            assert!(r.aware_runtime > 0.0 && r.oblivious_runtime > 0.0);
            assert!(r.aware_iops > 0.0 && r.oblivious_iops > 0.0);
        }
    }
}
