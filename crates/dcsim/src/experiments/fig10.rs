//! Fig 10: normalized throughput of MIBS for different arrival rates and
//! queue lengths (2, 4, 8).
//!
//! Paper shape: normalized throughput improves as λ increases; a longer
//! queue beats a shorter one (at λ = 100, MIBS_8 is ~10% above MIBS_4 and
//! MIBS_2); the medium mix benefits most.

use super::sweep::{dynamic_sweep, render_points, DynamicPoint, HORIZON_S, MACHINES};
use crate::arrival::WorkloadMix;
use crate::engine::SchedulerKind;
use crate::setup::Testbed;

/// Queue lengths compared (paper: 2, 4, 8).
pub const QUEUE_LENGTHS: [usize; 3] = [2, 4, 8];

/// The Fig 10 result.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// All swept points.
    pub points: Vec<DynamicPoint>,
}

/// Runs the Fig 10 sweep over the medium mix (the paper's emphasis) for
/// the given λ values.
pub fn run(
    testbed: &Testbed,
    lambdas: &[f64],
    machines: usize,
    repetitions: u64,
    seed: u64,
) -> Fig10 {
    let schedulers: Vec<SchedulerKind> = QUEUE_LENGTHS
        .iter()
        .map(|&l| SchedulerKind::Mibs(l))
        .collect();
    Fig10 {
        points: dynamic_sweep(
            testbed,
            machines,
            lambdas,
            &[WorkloadMix::Medium],
            &schedulers,
            HORIZON_S,
            repetitions,
            seed,
        ),
    }
}

impl Fig10 {
    /// Renders the figure's series.
    pub fn render(&self) -> String {
        render_points(
            &format!("Fig 10: MIBS queue lengths vs lambda ({MACHINES} machines, medium mix)"),
            &self.points,
        )
    }

    /// Prints the figure's series.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Mean normalized throughput of a queue length across the sweep.
    pub fn series_mean(&self, queue_len: usize) -> f64 {
        let xs: Vec<f64> = self
            .points
            .iter()
            .filter(|p| p.scheduler == SchedulerKind::Mibs(queue_len))
            .map(|p| p.normalized_throughput.mean)
            .collect();
        tracon_stats::mean(&xs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::tests::shared;

    #[test]
    fn longer_queue_not_worse_under_load() {
        let tb = shared();
        let fig = run(tb, &[40.0], 8, 3, 17);
        let q8 = fig.series_mean(8);
        let q2 = fig.series_mean(2);
        assert!(
            q8 >= q2 - 0.05,
            "longer queue should not lose: MIBS_8 {q8} vs MIBS_2 {q2}"
        );
    }
}
