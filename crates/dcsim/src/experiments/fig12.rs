//! Fig 12: normalized throughput of MIBS for different machine counts and
//! queue lengths (2, 4, 8) at a fixed high arrival rate.
//!
//! Paper shape: as in Fig 10, a longer queue sustains a higher normalized
//! throughput across cluster sizes.

use super::fig10::QUEUE_LENGTHS;
use super::fig11::LAMBDA;
use super::sweep::{dynamic_sweep, render_points, DynamicPoint, HORIZON_S};
use crate::arrival::WorkloadMix;
use crate::engine::SchedulerKind;
use crate::setup::Testbed;

/// The Fig 12 result.
#[derive(Debug, Clone)]
pub struct Fig12 {
    /// All swept points.
    pub points: Vec<DynamicPoint>,
}

/// Runs the Fig 12 sweep (medium mix).
pub fn run(
    testbed: &Testbed,
    machine_counts: &[usize],
    lambda: f64,
    repetitions: u64,
    seed: u64,
) -> Fig12 {
    let schedulers: Vec<SchedulerKind> = QUEUE_LENGTHS
        .iter()
        .map(|&l| SchedulerKind::Mibs(l))
        .collect();
    let mut points = Vec::new();
    for &machines in machine_counts {
        points.extend(dynamic_sweep(
            testbed,
            machines,
            &[lambda],
            &[WorkloadMix::Medium],
            &schedulers,
            HORIZON_S,
            repetitions,
            seed.wrapping_add(machines as u64 * 31),
        ));
    }
    Fig12 { points }
}

impl Fig12 {
    /// Renders the figure's series.
    pub fn render(&self) -> String {
        render_points(
            &format!("Fig 12: MIBS queue lengths vs machines (lambda = {LAMBDA}/min, medium mix)"),
            &self.points,
        )
    }

    /// Prints the figure's series.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Mean normalized throughput of a queue length across sizes.
    pub fn series_mean(&self, queue_len: usize) -> f64 {
        let xs: Vec<f64> = self
            .points
            .iter()
            .filter(|p| p.scheduler == SchedulerKind::Mibs(queue_len))
            .map(|p| p.normalized_throughput.mean)
            .collect();
        tracon_stats::mean(&xs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::tests::shared;

    #[test]
    fn queue_length_ordering_under_saturation() {
        let tb = shared();
        let fig = run(tb, &[8], 40.0, 3, 37);
        let q8 = fig.series_mean(8);
        let q2 = fig.series_mean(2);
        assert!(q8 >= q2 - 0.05, "MIBS_8 {q8} vs MIBS_2 {q2}");
        assert_eq!(fig.points.len(), 3);
    }
}
