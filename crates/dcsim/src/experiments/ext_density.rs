//! Extension experiment: consolidation density beyond two VMs per
//! machine.
//!
//! The paper fixes two VMs per physical machine "for simplicity". The
//! N-guest engine ([`tracon_vmsim::MultiEngine`]) lets us (a) measure how
//! interference compounds as more data-intensive guests share one host,
//! and (b) validate the data-center simulator's *dominant-neighbour*
//! approximation — when a machine hosts more than two VMs, the replayed
//! slowdown of a task uses its most I/O-intensive co-resident — against
//! ground truth.

use tracon_vmsim::{Benchmark, Engine, HostConfig, MultiEngine};

/// Measured slowdowns for one consolidation density.
#[derive(Debug, Clone)]
pub struct DensityRow {
    /// Number of co-located guests (including the target).
    pub guests: usize,
    /// Neighbour set description.
    pub neighbours: String,
    /// Ground-truth slowdown of the target (multi-VM engine).
    pub measured: f64,
    /// The dominant-neighbour approximation the data-center simulator
    /// would replay (pairwise slowdown against the most I/O-intensive
    /// neighbour).
    pub dominant_approx: f64,
}

/// The density-extension result.
#[derive(Debug, Clone)]
pub struct ExtDensity {
    /// Target benchmark name.
    pub target: &'static str,
    /// One row per density / neighbour set.
    pub rows: Vec<DensityRow>,
}

/// Runs the density sweep: `video` consolidated with increasingly many
/// neighbours drawn from a fixed pattern (email, dedup, email, dedup...).
pub fn run(time_scale: f64, seed: u64) -> ExtDensity {
    let host = HostConfig::testbed();
    let engine = Engine::new(host);
    let multi = MultiEngine::new(host);
    let target = Benchmark::Video.model().time_scaled(time_scale);
    let email = Benchmark::Email.model().time_scaled(time_scale);
    let dedup = Benchmark::Dedup.model().time_scaled(time_scale);

    let solo = engine.solo_run(&target, seed).runtime[0];

    // Pairwise slowdowns for the dominant-neighbour approximation.
    let pair_slowdown = |bg: &tracon_vmsim::AppModel, s: u64| -> f64 {
        engine.co_run(&target, &bg.as_endless(), s).runtime[0] / solo
    };
    let vs_email = pair_slowdown(&email, seed.wrapping_add(1));
    let vs_dedup = pair_slowdown(&dedup, seed.wrapping_add(2));

    let neighbour_sets: Vec<(String, Vec<tracon_vmsim::AppModel>, f64)> = vec![
        ("email".into(), vec![email.clone()], vs_email),
        ("dedup".into(), vec![dedup.clone()], vs_dedup),
        (
            "email+dedup".into(),
            vec![email.clone(), dedup.clone()],
            vs_dedup,
        ),
        (
            "email+email+dedup".into(),
            vec![email.clone(), email.clone(), dedup.clone()],
            vs_dedup,
        ),
        (
            "dedup+dedup".into(),
            vec![dedup.clone(), dedup.clone()],
            vs_dedup,
        ),
    ];

    let mut rows = Vec::new();
    for (k, (label, neighbours, dominant)) in neighbour_sets.into_iter().enumerate() {
        let mut guests = vec![target.clone()];
        guests.extend(neighbours.iter().map(|n| n.as_endless()));
        let out = multi.run(&guests, seed.wrapping_add(100 + k as u64));
        rows.push(DensityRow {
            guests: guests.len(),
            neighbours: label,
            measured: out.runtime[0] / solo,
            dominant_approx: dominant,
        });
    }
    ExtDensity {
        target: "video",
        rows,
    }
}

impl ExtDensity {
    /// Renders the sweep.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Consolidation-density extension: slowdown of `{}` vs neighbour set",
            self.target
        );
        let _ = writeln!(
            out,
            "{:>8} {:>20} {:>12} {:>20}",
            "guests", "neighbours", "measured", "dominant-approx"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:>8} {:>20} {:>11.2}x {:>19.2}x",
                r.guests, r.neighbours, r.measured, r.dominant_approx
            );
        }
        let _ = writeln!(
            out,
            "\n'dominant-approx' is what the data-center simulator replays when a"
        );
        let _ = writeln!(
            out,
            "machine hosts more than two VMs: the pairwise slowdown against the most"
        );
        let _ = writeln!(
            out,
            "I/O-intensive co-resident. It is exact at two guests and a lower bound"
        );
        let _ = writeln!(
            out,
            "beyond that; the gap quantifies the approximation error."
        );
        out
    }

    /// Prints the sweep.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominant_is_exact_at_two_guests_and_lower_bound_beyond() {
        let fig = run(0.08, 5);
        for r in &fig.rows {
            if r.guests == 2 {
                // Pair engine and multi engine draw jitter in slightly
                // different orders, so allow a modest tolerance.
                let rel = (r.measured - r.dominant_approx).abs() / r.measured;
                assert!(
                    rel < 0.12,
                    "{}: measured {} vs approx {}",
                    r.neighbours,
                    r.measured,
                    r.dominant_approx
                );
            } else {
                // With extra neighbours the true slowdown is at least the
                // dominant pairwise one (small tolerance for jitter).
                assert!(
                    r.measured >= r.dominant_approx * 0.95,
                    "{}: measured {} below dominant {}",
                    r.neighbours,
                    r.measured,
                    r.dominant_approx
                );
            }
        }
    }

    #[test]
    fn density_compounds_interference() {
        let fig = run(0.08, 6);
        let one_dedup = fig.rows.iter().find(|r| r.neighbours == "dedup").unwrap();
        let two_dedup = fig
            .rows
            .iter()
            .find(|r| r.neighbours == "dedup+dedup")
            .unwrap();
        assert!(
            two_dedup.measured > one_dedup.measured * 1.1,
            "second dedup must compound: {} vs {}",
            two_dedup.measured,
            one_dedup.measured
        );
    }
}
