//! Ablation experiment: what each MIBS design decision contributes.
//!
//! DESIGN.md documents three deliberate choices in our Min-Min
//! realization of MIBS (interference-excess scoring, fragility
//! tie-breaking on idle machines, whole-window double minimum). This
//! experiment removes them one at a time — plus the paper's Algorithm 2
//! listing taken literally and a random baseline — and measures static
//! batch speedups over FIFO for each variant.

use crate::arrival::{static_batch, WorkloadMix};
use crate::engine::{speedup, SchedulerKind, Simulation};
use crate::setup::Testbed;
use tracon_core::{MibsVariant, Objective};
use tracon_stats::Summary;

/// One ablation row.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Scheduler label.
    pub scheduler: String,
    /// Speedup over FIFO, uniform mix.
    pub uniform: Summary,
    /// Speedup over FIFO, medium mix.
    pub medium: Summary,
}

/// The ablation result.
#[derive(Debug, Clone)]
pub struct ExtAblation {
    /// Rows: full MIBS first, then each ablated variant.
    pub rows: Vec<AblationRow>,
}

/// Number of machines in the ablation batches.
pub const MACHINES: usize = 16;
/// Batch size.
pub const BATCH: usize = 32;

/// Runs the ablation over static batches.
pub fn run(testbed: &Testbed, repetitions: u64, seed: u64) -> ExtAblation {
    let mut kinds: Vec<(String, SchedulerKind)> =
        vec![("MIBS (full)".to_string(), SchedulerKind::Mibs(BATCH))];
    for v in MibsVariant::ALL {
        kinds.push((v.name().to_string(), SchedulerKind::Ablation(v, BATCH)));
    }

    let mut rows = Vec::new();
    for (label, kind) in kinds {
        let mut per_mix = Vec::new();
        for mix in [WorkloadMix::Uniform, WorkloadMix::Medium] {
            let mut speedups = Vec::new();
            for rep in 0..repetitions {
                let s = seed.wrapping_add(rep).wrapping_add(mix as u64 * 7919);
                let trace = static_batch(BATCH, mix, s);
                let fifo =
                    Simulation::new(testbed, MACHINES, SchedulerKind::Fifo).run(&trace, None);
                let r = Simulation::new(testbed, MACHINES, kind)
                    .with_objective(Objective::MinRuntime)
                    .run(&trace, None);
                speedups.push(speedup(&fifo, &r));
            }
            per_mix.push(tracon_stats::summarize(&speedups));
        }
        rows.push(AblationRow {
            scheduler: label,
            uniform: per_mix[0],
            medium: per_mix[1],
        });
    }
    ExtAblation { rows }
}

impl ExtAblation {
    /// Row by scheduler label.
    pub fn row(&self, label: &str) -> Option<&AblationRow> {
        self.rows.iter().find(|r| r.scheduler == label)
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "MIBS design-decision ablation: speedup over FIFO ({BATCH} tasks, {MACHINES} machines)"
        );
        let _ = writeln!(
            out,
            "{:>20} {:>22} {:>22}",
            "scheduler", "uniform mix", "medium mix"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:>20} {:>22} {:>22}",
                r.scheduler,
                super::fmt_pm(r.uniform.mean, r.uniform.std_dev),
                super::fmt_pm(r.medium.mean, r.medium.std_dev),
            );
        }
        out
    }

    /// Prints the table.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::tests::shared;

    #[test]
    fn full_mibs_beats_random_and_absolute_score() {
        let tb = shared();
        let fig = run(tb, 8, 3);
        let full = fig.row("MIBS (full)").unwrap().uniform.mean;
        let random = fig.row("RANDOM").unwrap().uniform.mean;
        let abs = fig.row("MIBS[abs-score]").unwrap().uniform.mean;
        assert!(
            full > random,
            "full MIBS {full} must beat random placement {random}"
        );
        assert!(
            full >= abs - 0.02,
            "excess scoring must not lose to absolute scoring: {full} vs {abs}"
        );
    }

    #[test]
    fn all_variants_produce_valid_runs() {
        let tb = shared();
        let fig = run(tb, 2, 9);
        assert_eq!(fig.rows.len(), 1 + MibsVariant::ALL.len());
        for r in &fig.rows {
            assert!(r.uniform.mean > 0.5 && r.uniform.mean < 3.0, "{:?}", r);
            assert!(r.medium.mean > 0.5 && r.medium.mean < 3.0, "{:?}", r);
        }
    }
}
