//! Fig 9: dynamic workloads — normalized throughput (completed tasks
//! relative to FIFO) of MIBS_8, MIOS, and MIX_8 as the Poisson arrival
//! rate λ grows, for the light / medium / heavy mixes on 64 machines
//! over a 10-hour horizon.
//!
//! Paper shape: at small λ all schedulers match FIFO (the data center is
//! mostly idle); as λ grows the interference-aware schedulers pull ahead;
//! MIX_8 is best with MIBS_8 very close behind and MIOS last; the medium
//! mix gives the highest normalized throughputs.

use crate::arrival::{poisson_trace, WorkloadMix};
use crate::engine::{SchedulerKind, Simulation};
use crate::setup::Testbed;
use tracon_core::Objective;
use tracon_stats::Summary;

/// Simulated horizon: ten hours (paper).
pub const HORIZON_S: f64 = 10.0 * 3600.0;
/// Cluster size (paper: 64 machines).
pub const MACHINES: usize = 64;
/// Default λ sweep, tasks per minute. (Our simulated benchmarks are
/// time-scaled, so the λ axis is proportionally rescaled relative to the
/// paper's; the saturation point of the 64-machine cluster falls inside
/// the sweep exactly as in Fig 9.)
pub const LAMBDAS: [f64; 6] = [5.0, 10.0, 20.0, 40.0, 60.0, 80.0];

/// One dynamic data point.
#[derive(Debug, Clone)]
pub struct DynamicPoint {
    /// Workload mix.
    pub mix: WorkloadMix,
    /// Scheduler.
    pub scheduler: SchedulerKind,
    /// Arrival rate, tasks/minute.
    pub lambda: f64,
    /// Number of machines.
    pub machines: usize,
    /// Throughput normalized to FIFO on the same trace.
    pub normalized_throughput: Summary,
    /// Raw completed-task counts (mean over repetitions).
    pub completed: f64,
}

/// Admission-queue capacity used for the dynamic scenarios: the paper's
/// dynamic system buffers incoming tasks in "the queue" whose length is
/// the schedulers' parameter; we bound the FIFO/MIOS buffer at the same
/// eight slots as the largest batch window so all schedulers face the
/// same admission pressure.
pub const QUEUE_CAPACITY: usize = 8;

/// Runs a dynamic sweep and normalizes each scheduler against FIFO on the
/// same arrival traces. Shared by Figs 9-12. Every scheduler runs with a
/// bounded admission queue (its batch window, or [`QUEUE_CAPACITY`] for
/// the online schedulers): under sustained overload an unbounded buffer
/// makes long-run throughput insensitive to placement quality (every
/// arrival is eventually served no matter how well it was paired), which
/// is not the regime the paper's Figs 9-12 describe.
///
/// Grid cells — (mix, λ) pairs — are independent, so the sweep evaluates
/// them on worker threads ([`tracon_core::par`]); results are identical
/// to the serial sweep for any thread count.
#[allow(clippy::too_many_arguments)] // a sweep is inherently a parameter grid
pub fn dynamic_sweep(
    testbed: &Testbed,
    machines: usize,
    lambdas: &[f64],
    mixes: &[WorkloadMix],
    schedulers: &[SchedulerKind],
    horizon_s: f64,
    repetitions: u64,
    seed: u64,
) -> Vec<DynamicPoint> {
    // One self-contained job per (mix, lambda) grid cell: the job
    // regenerates its repetition traces (seeded by the cell, so the trace
    // stream is independent of evaluation order), runs the FIFO baselines,
    // and evaluates every scheduler against them. Cells share nothing
    // mutable, so they fan out over worker threads; flattening in job
    // order keeps the output ordering (mix-major, then lambda, then
    // scheduler) bit-identical to the serial loop for any thread count.
    let mut jobs = Vec::new();
    for &mix in mixes {
        for &lambda in lambdas {
            jobs.push((mix, lambda));
        }
    }
    let cells = tracon_core::par::map(jobs, |(mix, lambda)| {
        // FIFO baselines per repetition.
        let mut fifo_completed = Vec::new();
        let mut traces = Vec::new();
        for rep in 0..repetitions {
            let s = seed
                .wrapping_add(rep * 7919)
                .wrapping_add((lambda * 10.0) as u64)
                .wrapping_add(mix as u64 * 65537);
            let trace = poisson_trace(lambda, horizon_s, mix, s);
            let fifo = Simulation::new(testbed, machines, SchedulerKind::Fifo)
                .with_queue_capacity(QUEUE_CAPACITY)
                .run(&trace, Some(horizon_s));
            fifo_completed.push(fifo.completed.max(1) as f64);
            traces.push(trace);
        }
        let mut cell = Vec::with_capacity(schedulers.len());
        for &kind in schedulers {
            let mut ratios = Vec::new();
            let mut completed_sum = 0.0;
            for (rep, trace) in traces.iter().enumerate() {
                // Every scheduler faces the same admission buffer; the
                // batch window is the scheduler's own parameter.
                let r = Simulation::new(testbed, machines, kind)
                    .with_objective(Objective::MinRuntime)
                    .with_queue_capacity(QUEUE_CAPACITY)
                    .run(trace, Some(horizon_s));
                ratios.push(r.completed as f64 / fifo_completed[rep]);
                completed_sum += r.completed as f64;
            }
            cell.push(DynamicPoint {
                mix,
                scheduler: kind,
                lambda,
                machines,
                normalized_throughput: tracon_stats::summarize(&ratios),
                completed: completed_sum / repetitions as f64,
            });
        }
        cell
    });
    cells.into_iter().flatten().collect()
}

/// The Fig 9 result.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// All swept points.
    pub points: Vec<DynamicPoint>,
}

/// Schedulers compared in Fig 9 (paper: MIBS_8, MIOS, MIX_8).
pub const SCHEDULERS: [SchedulerKind; 3] = [
    SchedulerKind::Mibs(8),
    SchedulerKind::Mios,
    SchedulerKind::Mix(8),
];

/// Runs the Fig 9 sweep.
pub fn run(
    testbed: &Testbed,
    lambdas: &[f64],
    machines: usize,
    repetitions: u64,
    seed: u64,
) -> Fig9 {
    Fig9 {
        points: dynamic_sweep(
            testbed,
            machines,
            lambdas,
            &WorkloadMix::INTENSITY_MIXES,
            &SCHEDULERS,
            HORIZON_S,
            repetitions,
            seed,
        ),
    }
}

/// Prints a dynamic point table (shared by Figs 9-12).
pub fn print_points(title: &str, points: &[DynamicPoint]) {
    println!("{title}");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>22} {:>12}",
        "mix", "scheduler", "machines", "lambda", "norm. throughput", "completed"
    );
    for p in points {
        println!(
            "{:>8} {:>10} {:>10} {:>10.0} {:>22} {:>12.0}",
            p.mix.name(),
            p.scheduler.name(),
            p.machines,
            p.lambda,
            super::fmt_pm(
                p.normalized_throughput.mean,
                p.normalized_throughput.std_dev
            ),
            p.completed,
        );
    }
}

impl Fig9 {
    /// Prints the figure's series.
    pub fn print(&self) {
        print_points(
            &format!("Fig 9: normalized throughput vs lambda ({MACHINES} machines, 10 h)"),
            &self.points,
        );
    }

    /// Normalized throughput for a specific point.
    pub fn point(
        &self,
        mix: WorkloadMix,
        scheduler: SchedulerKind,
        lambda: f64,
    ) -> Option<&DynamicPoint> {
        self.points
            .iter()
            .find(|p| p.mix == mix && p.scheduler == scheduler && p.lambda == lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::tests::shared;

    #[test]
    fn low_lambda_all_schedulers_similar() {
        let tb = shared();
        // Tiny load on 16 machines: everything completes under every
        // scheduler, so normalized throughput ~= 1.
        let fig = Fig9 {
            points: dynamic_sweep(
                tb,
                16,
                &[2.0],
                &[WorkloadMix::Medium],
                &SCHEDULERS,
                3600.0 * 4.0,
                2,
                3,
            ),
        };
        for p in &fig.points {
            assert!(
                (p.normalized_throughput.mean - 1.0).abs() < 0.05,
                "{} at low lambda: {}",
                p.scheduler.name(),
                p.normalized_throughput.mean
            );
        }
    }

    #[test]
    fn saturation_favors_interference_aware() {
        let tb = shared();
        let points = dynamic_sweep(
            tb,
            8,
            &[40.0],
            &[WorkloadMix::Medium],
            &[SchedulerKind::Mibs(8)],
            3600.0 * 3.0,
            3,
            11,
        );
        let mibs = &points[0];
        // With the reduced test testbed the dynamic gain is small; the
        // full-fidelity sweep (bench harness) shows the Fig 9 separation.
        // Here MIBS must at least not lose materially to FIFO.
        assert!(
            mibs.normalized_throughput.mean >= 0.95,
            "MIBS_8 under saturation: {}",
            mibs.normalized_throughput.mean
        );
    }
}
