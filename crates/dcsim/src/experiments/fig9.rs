//! Fig 9: dynamic workloads — normalized throughput (completed tasks
//! relative to FIFO) of MIBS_8, MIOS, and MIX_8 as the Poisson arrival
//! rate λ grows, for the light / medium / heavy mixes on 64 machines
//! over a 10-hour horizon.
//!
//! Paper shape: at small λ all schedulers match FIFO (the data center is
//! mostly idle); as λ grows the interference-aware schedulers pull ahead;
//! MIX_8 is best with MIBS_8 very close behind and MIOS last; the medium
//! mix gives the highest normalized throughputs.

use super::sweep::{render_points, DynamicPoint, HORIZON_S, MACHINES};
// Re-exported for callers that reach the sweep through the fig9 path
// (e.g. the determinism integration test).
pub use super::sweep::dynamic_sweep;
use crate::arrival::WorkloadMix;
use crate::engine::SchedulerKind;
use crate::setup::Testbed;

/// Default λ sweep, tasks per minute. (Our simulated benchmarks are
/// time-scaled, so the λ axis is proportionally rescaled relative to the
/// paper's; the saturation point of the 64-machine cluster falls inside
/// the sweep exactly as in Fig 9.)
pub const LAMBDAS: [f64; 6] = [5.0, 10.0, 20.0, 40.0, 60.0, 80.0];

/// The Fig 9 result.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// All swept points.
    pub points: Vec<DynamicPoint>,
}

/// Schedulers compared in Fig 9 (paper: MIBS_8, MIOS, MIX_8).
pub const SCHEDULERS: [SchedulerKind; 3] = [
    SchedulerKind::Mibs(8),
    SchedulerKind::Mios,
    SchedulerKind::Mix(8),
];

/// Runs the Fig 9 sweep.
pub fn run(
    testbed: &Testbed,
    lambdas: &[f64],
    machines: usize,
    repetitions: u64,
    seed: u64,
) -> Fig9 {
    Fig9 {
        points: dynamic_sweep(
            testbed,
            machines,
            lambdas,
            &WorkloadMix::INTENSITY_MIXES,
            &SCHEDULERS,
            HORIZON_S,
            repetitions,
            seed,
        ),
    }
}

impl Fig9 {
    /// Renders the figure's series.
    pub fn render(&self) -> String {
        render_points(
            &format!("Fig 9: normalized throughput vs lambda ({MACHINES} machines, 10 h)"),
            &self.points,
        )
    }

    /// Prints the figure's series.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Normalized throughput for a specific point.
    pub fn point(
        &self,
        mix: WorkloadMix,
        scheduler: SchedulerKind,
        lambda: f64,
    ) -> Option<&DynamicPoint> {
        self.points
            .iter()
            .find(|p| p.mix == mix && p.scheduler == scheduler && p.lambda == lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::tests::shared;

    #[test]
    fn low_lambda_all_schedulers_similar() {
        let tb = shared();
        // Tiny load on 16 machines: everything completes under every
        // scheduler, so normalized throughput ~= 1.
        let fig = Fig9 {
            points: dynamic_sweep(
                tb,
                16,
                &[2.0],
                &[WorkloadMix::Medium],
                &SCHEDULERS,
                3600.0 * 4.0,
                2,
                3,
            ),
        };
        for p in &fig.points {
            assert!(
                (p.normalized_throughput.mean - 1.0).abs() < 0.05,
                "{} at low lambda: {}",
                p.scheduler.name(),
                p.normalized_throughput.mean
            );
        }
    }

    #[test]
    fn saturation_favors_interference_aware() {
        let tb = shared();
        let points = dynamic_sweep(
            tb,
            8,
            &[40.0],
            &[WorkloadMix::Medium],
            &[SchedulerKind::Mibs(8)],
            3600.0 * 3.0,
            3,
            11,
        );
        let mibs = &points[0];
        // With the reduced test testbed the dynamic gain is small; the
        // full-fidelity sweep (bench harness) shows the Fig 9 separation.
        // Here MIBS must at least not lose materially to FIFO.
        assert!(
            mibs.normalized_throughput.mean >= 0.95,
            "MIBS_8 under saturation: {}",
            mibs.normalized_throughput.mean
        );
    }
}
