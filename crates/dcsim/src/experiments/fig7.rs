//! Fig 7: online model learning. A blastn interference model trained on
//! a host with local storage is applied to an otherwise-identical host
//! whose storage is remote (iSCSI). Prediction errors surge (paper:
//! runtime 12% -> 160%, IOPS 12% -> 83%); TRACON keeps collecting
//! statistics, gradually replaces the training window, and rebuilds the
//! model every 160 new data points, after which the error returns to the
//! ~10% level. A control run that stays on local storage stays flat.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tracon_core::{AdaptiveModel, ModelKind, MonitorConfig, ResponseScale, TrainingData};
use tracon_vmsim::{apps, AppModel, Engine, HostConfig, Profiler};

/// Parameters of the adaptation experiment.
#[derive(Debug, Clone)]
pub struct Fig7Config {
    /// Initial training points collected on local storage (paper: 500).
    pub initial_points: usize,
    /// Streamed observations after the storage switch.
    pub stream_points: usize,
    /// Rebuild interval (paper: 160).
    pub rebuild_every: usize,
    /// Benchmark time scale.
    pub time_scale: f64,
    /// Base seed.
    pub seed: u64,
}

impl Fig7Config {
    /// Paper-faithful sizes.
    pub fn full() -> Self {
        Fig7Config {
            initial_points: 500,
            stream_points: 500,
            rebuild_every: 160,
            time_scale: 0.25,
            seed: 0xF167,
        }
    }

    /// Reduced sizes for tests.
    pub fn small() -> Self {
        Fig7Config {
            initial_points: 150,
            stream_points: 160,
            rebuild_every: 50,
            time_scale: 0.08,
            seed: 0xF167,
        }
    }
}

/// One error-trajectory sample.
#[derive(Debug, Clone, Copy)]
pub struct TrajectoryPoint {
    /// Stream observation index.
    pub index: usize,
    /// Windowed mean relative error of the runtime model.
    pub runtime_error: f64,
    /// Windowed mean relative error of the IOPS model.
    pub iops_error: f64,
}

/// The Fig 7 result.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// Training-set error of the initial models on local storage.
    pub initial_runtime_error: f64,
    /// Training-set error of the initial IOPS model.
    pub initial_iops_error: f64,
    /// Error trajectory on the iSCSI host with adaptation enabled.
    pub adapted: Vec<TrajectoryPoint>,
    /// Error trajectory of the control run (local storage throughout).
    pub control: Vec<TrajectoryPoint>,
    /// Rebuild count during the adapted run (per model).
    pub rebuilds: usize,
}

fn random_background(rng: &mut StdRng) -> AppModel {
    let level = |rng: &mut StdRng| -> f64 { rng.gen_range(0..5) as f64 * 0.25 };
    apps::synthetic(level(rng), level(rng), level(rng))
}

/// Collects `(features, runtime, iops)` observations of blastn against
/// random synthetic backgrounds on the given host.
fn collect(
    host: HostConfig,
    target: &AppModel,
    n: usize,
    seed: u64,
) -> (TrainingData, TrainingData) {
    let profiler = Profiler::new(Engine::new(host));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut runtime = TrainingData::default();
    let mut iops = TrainingData::default();
    // The solo profile is the constant half of the feature vector.
    let (solo, _, _) = profiler.solo(target, seed);
    for k in 0..n {
        let bg = random_background(&mut rng);
        let set = profiler.profile_one(target, &solo, &bg, seed.wrapping_add(1 + k as u64));
        runtime.push(set.0, set.1);
        iops.push(set.0, set.2);
    }
    (runtime, iops)
}

fn windowed_errors(history: &[f64], window: usize) -> Vec<(usize, f64)> {
    history
        .chunks(window)
        .enumerate()
        .map(|(i, chunk)| {
            (
                (i + 1) * window.min(history.len()),
                tracon_stats::mean(chunk),
            )
        })
        .collect()
}

/// Runs the Fig 7 adaptation experiment.
pub fn run(cfg: &Fig7Config) -> Fig7 {
    let target = apps::Benchmark::Blastn.model().time_scaled(cfg.time_scale);
    let local = HostConfig::testbed();
    let remote = HostConfig::class("iscsi");

    // Initial models trained on local-storage observations.
    let (rt_data, io_data) = collect(local, &target, cfg.initial_points, cfg.seed);
    let monitor_cfg = MonitorConfig {
        window_capacity: cfg.initial_points,
        rebuild_every: cfg.rebuild_every,
        ..MonitorConfig::default()
    };
    let mut rt_adapt = AdaptiveModel::new(ModelKind::Nonlinear, &rt_data, monitor_cfg);
    let mut io_adapt = AdaptiveModel::new_scaled(
        ModelKind::Nonlinear,
        ResponseScale::Reciprocal,
        &io_data,
        monitor_cfg,
    );
    let initial_runtime_error = initial_error(&rt_adapt, &rt_data);
    let initial_iops_error = initial_error(&io_adapt, &io_data);

    // Control models (never see the remote host).
    let mut rt_control = AdaptiveModel::new(ModelKind::Nonlinear, &rt_data, monitor_cfg);
    let mut io_control = AdaptiveModel::new_scaled(
        ModelKind::Nonlinear,
        ResponseScale::Reciprocal,
        &io_data,
        monitor_cfg,
    );

    // Stream observations.
    let (rt_remote, io_remote) = collect(
        remote,
        &target,
        cfg.stream_points,
        cfg.seed.wrapping_add(777),
    );
    let (rt_local2, io_local2) = collect(
        local,
        &target,
        cfg.stream_points,
        cfg.seed.wrapping_add(888),
    );
    for i in 0..cfg.stream_points {
        rt_adapt.observe(rt_remote.features[i], rt_remote.responses[i]);
        io_adapt.observe(io_remote.features[i], io_remote.responses[i]);
        rt_control.observe(rt_local2.features[i], rt_local2.responses[i]);
        io_control.observe(io_local2.features[i], io_local2.responses[i]);
    }

    let window = (cfg.rebuild_every / 4).max(10);
    let pack = |rt: &AdaptiveModel, io: &AdaptiveModel| -> Vec<TrajectoryPoint> {
        let rts = windowed_errors(rt.error_history(), window);
        let ios = windowed_errors(io.error_history(), window);
        rts.iter()
            .zip(&ios)
            .map(|(&(i, re), &(_, ie))| TrajectoryPoint {
                index: i,
                runtime_error: re,
                iops_error: ie,
            })
            .collect()
    };
    let adapted = pack(&rt_adapt, &io_adapt);
    let control = pack(&rt_control, &io_control);

    Fig7 {
        initial_runtime_error,
        initial_iops_error,
        adapted,
        control,
        rebuilds: rt_adapt.rebuilds(),
    }
}

fn initial_error(model: &AdaptiveModel, data: &TrainingData) -> f64 {
    let errs: Vec<f64> = data
        .features
        .iter()
        .zip(&data.responses)
        .map(|(f, &y)| tracon_core::relative_error(model.predict(f), y))
        .collect();
    tracon_stats::mean(&errs)
}

impl Fig7 {
    /// Mean error over the first reporting window of the adapted run.
    pub fn early_error(&self) -> (f64, f64) {
        self.adapted
            .first()
            .map(|p| (p.runtime_error, p.iops_error))
            .unwrap_or((0.0, 0.0))
    }

    /// Mean error over the last reporting window of the adapted run.
    pub fn late_error(&self) -> (f64, f64) {
        self.adapted
            .last()
            .map(|p| (p.runtime_error, p.iops_error))
            .unwrap_or((0.0, 0.0))
    }

    /// Renders the trajectory series.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Fig 7: online model learning (blastn, local -> iSCSI storage)"
        );
        let _ = writeln!(
            out,
            "initial training error: runtime {:.3}, IOPS {:.3}; rebuilds every window of new data: {}",
            self.initial_runtime_error, self.initial_iops_error, self.rebuilds
        );
        let _ = writeln!(
            out,
            "{:>8} {:>16} {:>16} {:>16} {:>16}",
            "obs", "adapt rt err", "adapt io err", "ctrl rt err", "ctrl io err"
        );
        for (a, c) in self.adapted.iter().zip(&self.control) {
            let _ = writeln!(
                out,
                "{:8} {:16.3} {:16.3} {:16.3} {:16.3}",
                a.index, a.runtime_error, a.iops_error, c.runtime_error, c.iops_error
            );
        }
        out
    }

    /// Prints the trajectory series.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptation_recovers_from_storage_switch() {
        let fig = run(&Fig7Config::small());
        let (early_rt, early_io) = fig.early_error();
        let (late_rt, late_io) = fig.late_error();
        // Errors surge right after the switch...
        assert!(
            early_rt > 2.0 * fig.initial_runtime_error.max(0.02),
            "no runtime-error surge: early {early_rt} vs initial {}",
            fig.initial_runtime_error
        );
        // ...and recover after rebuilds.
        assert!(fig.rebuilds >= 2, "rebuilds = {}", fig.rebuilds);
        assert!(
            late_rt < early_rt * 0.7,
            "runtime error did not recover: {early_rt} -> {late_rt}"
        );
        assert!(
            late_io <= early_io,
            "IOPS error did not improve: {early_io} -> {late_io}"
        );
    }

    #[test]
    fn control_run_stays_flat() {
        let fig = run(&Fig7Config::small());
        let first = fig.control.first().unwrap();
        let last = fig.control.last().unwrap();
        assert!(
            first.runtime_error < 0.5,
            "control surged: {}",
            first.runtime_error
        );
        assert!(
            last.runtime_error < 0.5,
            "control degraded: {}",
            last.runtime_error
        );
    }
}
