//! Fig 8: static-workload speedups of MIBS_RT and MIBS_IO over FIFO for
//! light / medium / heavy I/O mixes across cluster sizes.
//!
//! Paper setup: the task list equals the number of available VMs
//! (2 x machines); machines range from 8 to 1,024. Paper shape: the
//! heavy mix leaves little room (everything interferes with everything);
//! the light mix improves substantially; the medium mix is best.

use crate::arrival::{static_batch, WorkloadMix};
use crate::engine::{io_boost, speedup, SchedulerKind, Simulation};
use crate::setup::Testbed;
use tracon_core::Objective;
use tracon_stats::Summary;

/// Cluster sizes swept (paper: 8 to 1,024).
pub const MACHINE_COUNTS: [usize; 8] = [8, 16, 32, 64, 128, 256, 512, 1024];

/// One Fig 8 data point.
#[derive(Debug, Clone)]
pub struct Fig8Point {
    /// Workload mix.
    pub mix: WorkloadMix,
    /// Scheduler objective (RT or IO).
    pub objective: Objective,
    /// Number of machines.
    pub machines: usize,
    /// Runtime speedup over FIFO.
    pub speedup: Summary,
    /// IOPS improvement over FIFO.
    pub io_boost: Summary,
}

/// The Fig 8 result.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// All swept points.
    pub points: Vec<Fig8Point>,
}

/// Runs the Fig 8 sweep. `machine_counts` allows reduced sweeps in tests.
///
/// Each (mix, objective, machines) grid cell is self-contained (its
/// repetition seeds depend only on the cell), so the cells are evaluated
/// on worker threads ([`tracon_core::par`]); the point order and every
/// statistic are identical to the serial sweep for any thread count.
pub fn run(testbed: &Testbed, machine_counts: &[usize], repetitions: u64, seed: u64) -> Fig8 {
    let mut jobs = Vec::new();
    for mix in WorkloadMix::INTENSITY_MIXES {
        for objective in [Objective::MinRuntime, Objective::MaxIops] {
            for &machines in machine_counts {
                jobs.push((mix, objective, machines));
            }
        }
    }
    let points = tracon_core::par::map(jobs, |(mix, objective, machines)| {
        let batch = 2 * machines;
        let mut speedups = Vec::new();
        let mut boosts = Vec::new();
        for rep in 0..repetitions {
            let s = seed
                .wrapping_add(rep)
                .wrapping_add(machines as u64 * 1000)
                .wrapping_add(mix as u64 * 101);
            let trace = static_batch(batch, mix, s);
            let fifo = Simulation::new(testbed, machines, SchedulerKind::Fifo).run(&trace, None);
            let mibs = Simulation::new(testbed, machines, SchedulerKind::Mibs(batch))
                .with_objective(objective)
                .run(&trace, None);
            speedups.push(speedup(&fifo, &mibs));
            boosts.push(io_boost(&fifo, &mibs));
        }
        Fig8Point {
            mix,
            objective,
            machines,
            speedup: tracon_stats::summarize(&speedups),
            io_boost: tracon_stats::summarize(&boosts),
        }
    });
    Fig8 { points }
}

impl Fig8 {
    /// Mean speedup of a (mix, objective) series averaged over sizes.
    pub fn series_mean(&self, mix: WorkloadMix, objective: Objective) -> f64 {
        let xs: Vec<f64> = self
            .points
            .iter()
            .filter(|p| p.mix == mix && p.objective == objective)
            .map(|p| p.speedup.mean)
            .collect();
        tracon_stats::mean(&xs)
    }

    /// Renders the figure's series.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Fig 8: static-workload Speedup / IOBoost of MIBS over FIFO"
        );
        let _ = writeln!(
            out,
            "{:>8} {:>12} {:>10} {:>22} {:>22}",
            "mix", "scheduler", "machines", "Speedup", "IOBoost"
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "{:>8} {:>12} {:>10} {:>22} {:>22}",
                p.mix.name(),
                format!("MIBS_{}", p.objective.suffix()),
                p.machines,
                super::fmt_pm(p.speedup.mean, p.speedup.std_dev),
                super::fmt_pm(p.io_boost.mean, p.io_boost.std_dev),
            );
        }
        out
    }

    /// Prints the figure's series.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::tests::shared;

    #[test]
    fn medium_beats_heavy() {
        let tb = shared();
        let fig = run(tb, &[16, 32], 4, 5);
        let medium = fig.series_mean(WorkloadMix::Medium, Objective::MinRuntime);
        let heavy = fig.series_mean(WorkloadMix::Heavy, Objective::MinRuntime);
        // On the reduced test testbed medium and heavy are close; the
        // full campaign (EXPERIMENTS.md) separates them clearly. Here
        // medium must show a real improvement and not lose to heavy
        // materially.
        assert!(
            medium >= heavy - 0.05,
            "medium mix must have improvement room: medium {medium} vs heavy {heavy}"
        );
        assert!(medium > 1.0, "medium speedup {medium}");
    }

    #[test]
    fn all_points_have_positive_metrics() {
        let tb = shared();
        let fig = run(tb, &[8], 2, 9);
        assert_eq!(fig.points.len(), 6);
        for p in &fig.points {
            assert!(p.speedup.mean > 0.5 && p.speedup.mean < 3.0);
            assert!(p.io_boost.mean > 0.5 && p.io_boost.mean < 3.0);
        }
    }
}
