//! Experiment drivers: one per table and figure of the paper's
//! evaluation (Section 4). Each driver is a pure function from a built
//! [`Testbed`] (plus experiment parameters) to a structured result with
//! `render`/`print` methods that emit the same rows/series the paper
//! reports. The [`registry`] module unifies all drivers behind the
//! [`registry::Experiment`] trait so the CLI and the `tracon-bench`
//! harness can enumerate and run them by name.

pub mod ext_ablation;
pub mod ext_adaptive;
pub mod ext_density;
pub mod ext_faults;
pub mod ext_network;
pub mod ext_storage;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig3;
pub mod fig4;
pub mod fig5_6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod registry;
pub mod sweep;
pub mod table1;

use crate::setup::{Testbed, TestbedConfig};
use tracon_core::ModelKind;

/// Configuration shared by the experiment drivers: testbed parameters
/// plus the sweep grids the registry-run experiments consume.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Testbed construction parameters.
    pub testbed: TestbedConfig,
    /// Repetitions for averaged results (the paper averages three runs;
    /// we default to more for tighter error bars).
    pub repetitions: u64,
    /// Base seed for workload sampling.
    pub seed: u64,
    /// λ sweep (tasks/minute) for the dynamic figures (9, 10).
    pub lambdas: Vec<f64>,
    /// Machine-count sweep for the scalability figures (8, 11, 12).
    pub machine_counts: Vec<usize>,
    /// Cluster size for the fixed-size dynamic figures (9, 10).
    pub machines: usize,
    /// Repetitions for the long dynamic sweeps (cheaper than
    /// `repetitions` because each run covers a 10-hour horizon).
    pub sweep_repetitions: u64,
    /// Benchmark time scale for the vmsim-level extension experiments
    /// (storage, density), which run real simulated benchmarks rather
    /// than the replayed pair table.
    pub ext_time_scale: f64,
}

impl ExperimentConfig {
    /// Full-fidelity configuration used by the benchmark harness.
    ///
    /// The testbed time scale is 0.25: simulated benchmarks run for tens
    /// of seconds instead of minutes, which puts the paper's λ axis
    /// (tasks per minute) in the same relation to cluster capacity as the
    /// original testbed. Interference ratios are time-scale invariant.
    pub fn full() -> Self {
        ExperimentConfig {
            testbed: TestbedConfig {
                time_scale: 0.25,
                ..TestbedConfig::full()
            },
            repetitions: 10,
            seed: 0xF1605,
            lambdas: vec![5.0, 10.0, 20.0, 40.0, 60.0, 80.0, 100.0],
            machine_counts: vec![8, 16, 32, 64, 128, 256, 512, 1024],
            machines: sweep::MACHINES,
            sweep_repetitions: 3,
            ext_time_scale: 0.25,
        }
    }

    /// Reduced-grid configuration for quick full-pipeline passes (the
    /// bench harness's `--quick` flag): a coarser calibration, fewer
    /// repetitions, and thinned sweep grids.
    pub fn quick() -> Self {
        ExperimentConfig {
            testbed: TestbedConfig {
                calibration_points: 45,
                ..Self::full().testbed
            },
            repetitions: 3,
            lambdas: vec![10.0, 40.0, 80.0],
            machine_counts: vec![8, 32, 128],
            sweep_repetitions: 2,
            ext_time_scale: 0.1,
            ..Self::full()
        }
    }

    /// Reduced configuration for integration tests.
    pub fn small() -> Self {
        ExperimentConfig {
            testbed: TestbedConfig::small(),
            repetitions: 3,
            seed: 0xF1605,
            lambdas: vec![10.0, 40.0],
            machine_counts: vec![8, 16],
            machines: 8,
            sweep_repetitions: 2,
            ext_time_scale: 0.08,
        }
    }
}

/// Builds the testbed for an experiment configuration.
pub fn build_testbed(cfg: &ExperimentConfig) -> Testbed {
    Testbed::build(&cfg.testbed)
}

/// Builds a predictor backed by a specific model family from an existing
/// testbed's profiling data (used by the Fig 4 model comparison without
/// re-running the profiling campaign).
pub fn predictor_with_model(testbed: &Testbed, kind: ModelKind) -> tracon_core::Predictor {
    use crate::setup::training_data;
    use tracon_core::{AppModelSet, AppProfile, Characteristics};
    let mut predictor = tracon_core::Predictor::new();
    for set in &testbed.profiles {
        let runtime = tracon_core::train_model_scaled(
            kind,
            &training_data(set, tracon_core::Response::Runtime),
            tracon_core::ResponseScale::for_response(tracon_core::Response::Runtime),
        );
        let iops = tracon_core::train_model_scaled(
            kind,
            &training_data(set, tracon_core::Response::Iops),
            tracon_core::ResponseScale::for_response(tracon_core::Response::Iops),
        );
        let solo = Characteristics::new(
            set.solo.read_rps,
            set.solo.write_rps,
            set.solo.cpu_util,
            set.solo.dom0_util,
        );
        predictor.add_app(
            AppProfile {
                name: set.target.clone(),
                solo,
                solo_runtime: set.solo_runtime,
                solo_iops: set.solo_iops,
            },
            AppModelSet { runtime, iops },
        );
    }
    predictor
}

/// Formats a mean +- std pair the way the figures report bars with error
/// whiskers.
pub fn fmt_pm(mean: f64, std: f64) -> String {
    format!("{mean:6.3} +- {std:5.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_build() {
        let f = ExperimentConfig::full();
        assert_eq!(f.testbed.calibration_points, 125);
        assert!(f.repetitions >= 3);
        let s = ExperimentConfig::small();
        assert!(s.testbed.calibration_points < 125);
        let q = ExperimentConfig::quick();
        assert_eq!(q.testbed.calibration_points, 45);
        assert!(q.lambdas.len() < f.lambdas.len());
        assert!(q.machine_counts.len() < f.machine_counts.len());
    }

    #[test]
    fn predictor_with_model_trains_all_kinds() {
        let tb = crate::setup::tests::shared();
        for kind in [ModelKind::Wmm, ModelKind::Linear, ModelKind::Nonlinear] {
            let p = predictor_with_model(tb, kind);
            assert!(p.knows("video"));
            let rt = p.predict_runtime("video", &tracon_core::Characteristics::idle());
            assert!(rt.is_finite() && rt > 0.0);
        }
    }
}
