//! Fig 4: task scheduling with different prediction models — Speedup and
//! IOBoost of MIBS_RT and MIBS_IO (normalized to FIFO) when the scheduler
//! is driven by WMM, LM, or NLM.
//!
//! Paper setup: batches of 32 tasks sampled uniformly from the eight
//! applications, scheduled onto 16 machines with two VMs each. Paper
//! shape: NLM gives the best Speedup and IOBoost; WMM and LM trail.

use super::predictor_with_model;
use crate::arrival::{static_batch, WorkloadMix};
use crate::engine::{io_boost, speedup, SchedulerKind, Simulation};
use crate::setup::Testbed;
use tracon_core::{ModelKind, Objective};
use tracon_stats::Summary;

/// Number of machines (paper: 16).
pub const MACHINES: usize = 16;
/// Batch size (paper: 32).
pub const BATCH: usize = 32;

/// One Fig 4 bar.
#[derive(Debug, Clone)]
pub struct Fig4Bar {
    /// Model family driving the scheduler.
    pub model: ModelKind,
    /// Scheduler objective (RT or IO).
    pub objective: Objective,
    /// Runtime improvement over FIFO (equation 5).
    pub speedup: Summary,
    /// I/O throughput improvement over FIFO (equation 6).
    pub io_boost: Summary,
}

/// The Fig 4 result.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// One bar per (model, objective).
    pub bars: Vec<Fig4Bar>,
}

/// Model families the paper compares in Fig 4.
pub const MODELS: [ModelKind; 3] = [ModelKind::Wmm, ModelKind::Linear, ModelKind::Nonlinear];

/// Runs the Fig 4 experiment.
pub fn run(testbed: &Testbed, repetitions: u64, seed: u64) -> Fig4 {
    let mut bars = Vec::new();
    for model in MODELS {
        let predictor = predictor_with_model(testbed, model);
        for objective in [Objective::MinRuntime, Objective::MaxIops] {
            let mut speedups = Vec::new();
            let mut boosts = Vec::new();
            for rep in 0..repetitions {
                let trace = static_batch(BATCH, WorkloadMix::Uniform, seed.wrapping_add(rep));
                let fifo =
                    Simulation::new(testbed, MACHINES, SchedulerKind::Fifo).run(&trace, None);
                let mibs = Simulation::new(testbed, MACHINES, SchedulerKind::Mibs(BATCH))
                    .with_objective(objective)
                    .with_predictor(&predictor)
                    .run(&trace, None);
                speedups.push(speedup(&fifo, &mibs));
                boosts.push(io_boost(&fifo, &mibs));
            }
            bars.push(Fig4Bar {
                model,
                objective,
                speedup: tracon_stats::summarize(&speedups),
                io_boost: tracon_stats::summarize(&boosts),
            });
        }
    }
    Fig4 { bars }
}

impl Fig4 {
    /// Finds the bar for a (model, objective) pair.
    pub fn bar(&self, model: ModelKind, objective: Objective) -> Option<&Fig4Bar> {
        self.bars
            .iter()
            .find(|b| b.model == model && b.objective == objective)
    }

    /// Renders the figure's series.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Fig 4: MIBS with different models, {BATCH} tasks on {MACHINES} machines x 2 VMs (vs FIFO)"
        );
        let _ = writeln!(
            out,
            "{:14} {:>10} {:>22} {:>22}",
            "scheduler", "model", "Speedup", "IOBoost"
        );
        for b in &self.bars {
            let _ = writeln!(
                out,
                "MIBS_{:9} {:>10} {:>22} {:>22}",
                b.objective.suffix(),
                b.model.name(),
                super::fmt_pm(b.speedup.mean, b.speedup.std_dev),
                super::fmt_pm(b.io_boost.mean, b.io_boost.std_dev),
            );
        }
        out
    }

    /// Prints the figure's series.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::tests::shared;

    #[test]
    fn nlm_gives_best_speedup() {
        let tb = shared();
        let fig = run(tb, 6, 7);
        let nlm = fig
            .bar(ModelKind::Nonlinear, Objective::MinRuntime)
            .unwrap();
        let wmm = fig.bar(ModelKind::Wmm, Objective::MinRuntime).unwrap();
        // NLM must improve on FIFO and not lose to the baseline model.
        assert!(nlm.speedup.mean > 1.0, "NLM speedup {}", nlm.speedup.mean);
        assert!(
            nlm.speedup.mean >= wmm.speedup.mean - 0.05,
            "NLM {} vs WMM {}",
            nlm.speedup.mean,
            wmm.speedup.mean
        );
    }

    #[test]
    fn io_objective_boosts_iops() {
        let tb = shared();
        let fig = run(tb, 6, 11);
        let io = fig.bar(ModelKind::Nonlinear, Objective::MaxIops).unwrap();
        assert!(io.io_boost.mean > 1.0, "IOBoost {}", io.io_boost.mean);
    }

    #[test]
    fn six_bars_total() {
        let tb = shared();
        let fig = run(tb, 2, 3);
        assert_eq!(fig.bars.len(), 6);
    }
}
