//! Table 1: normalized App1 runtime in VM1 while various App2 workloads
//! run in VM2 — the paper's motivating interference measurement.
//!
//! Paper values: Calc row 1.96 / 1.26 / 1.77 / 2.52; SeqRead row 1.03 /
//! 10.23 / 1.78 / 16.11 (columns: CPU-high, I/O-high, CPU&I/O-medium,
//! CPU&I/O-high).

use tracon_vmsim::{apps, Engine, HostConfig};

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// App1 name (Calc or SeqRead).
    pub app1: &'static str,
    /// Normalized runtimes for the four App2 columns.
    pub cells: [f64; 4],
}

/// The reproduced Table 1.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Column labels (App2 workloads).
    pub columns: [&'static str; 4],
    /// Calc and SeqRead rows.
    pub rows: Vec<Table1Row>,
}

/// Runs the Table 1 measurement on the virtualized testbed.
pub fn run(host: HostConfig, seed: u64) -> Table1 {
    let engine = Engine::new(host);
    let backgrounds = apps::table1_backgrounds();
    let columns = ["CPU high", "I/O high", "CPU&I/O med", "CPU&I/O high"];
    let mut rows = Vec::new();
    for (name, app1) in [("Calc", apps::calc()), ("SeqRead", apps::seq_read())] {
        let solo = engine.solo_run(&app1, seed).runtime[0];
        let mut cells = [0.0; 4];
        for (i, (_, bg)) in backgrounds.iter().enumerate() {
            let out = engine.co_run(&app1, bg, seed.wrapping_add(i as u64 + 1));
            cells[i] = out.runtime[0] / solo;
        }
        rows.push(Table1Row { app1: name, cells });
    }
    Table1 { columns, rows }
}

impl Table1 {
    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Table 1: normalized App1 runtime under App2 interference"
        );
        let _ = write!(out, "{:10}", "App1\\App2");
        for c in self.columns {
            let _ = write!(out, " {c:>14}");
        }
        let _ = writeln!(out);
        for row in &self.rows {
            let _ = write!(out, "{:10}", row.app1);
            for v in row.cells {
                let _ = write!(out, " {v:14.2}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Prints the table in the paper's layout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_paper_structure() {
        let t = run(HostConfig::testbed(), 1);
        assert_eq!(t.rows.len(), 2);
        let calc = &t.rows[0];
        let seqread = &t.rows[1];
        // Calc row: CPU doubling, mild I/O effect, worst when both high.
        assert!(
            (1.8..2.2).contains(&calc.cells[0]),
            "calc cpu-high {}",
            calc.cells[0]
        );
        assert!(
            calc.cells[1] < calc.cells[0],
            "I/O-high must be mildest for Calc"
        );
        assert!(
            calc.cells[3] >= calc.cells[0] * 0.95,
            "CPU&I/O-high worst-ish for Calc"
        );
        // SeqRead row: unaffected by CPU, collapses under I/O, worst when
        // the neighbour also saturates the CPU.
        assert!(
            seqread.cells[0] < 1.3,
            "seqread cpu-high {}",
            seqread.cells[0]
        );
        assert!(
            seqread.cells[1] > 5.0,
            "seqread io-high {}",
            seqread.cells[1]
        );
        assert!(
            seqread.cells[3] > seqread.cells[1],
            "CPU&I/O-high ({}) must exceed I/O-high ({})",
            seqread.cells[3],
            seqread.cells[1]
        );
        assert!(
            seqread.cells[2] < seqread.cells[1],
            "medium I/O must interfere less than high"
        );
    }
}
