//! The experiment registry: every table/figure driver behind one
//! object-safe [`Experiment`] trait, so the CLI (`tracon experiment`)
//! and the bench harness can enumerate, look up, and run them by name.
//!
//! Experiments that need the profiled testbed share one lazily-built
//! instance through [`TestbedCache`]; the vmsim-level experiments
//! (table1, fig7, storage, density) never trigger the profiling
//! campaign.

use super::{
    ext_ablation, ext_adaptive, ext_density, ext_faults, ext_network, ext_storage, fig10, fig11,
    fig12, fig3, fig4, fig5_6, fig7, fig8, fig9, table1, ExperimentConfig,
};
use crate::setup::Testbed;
use std::sync::OnceLock;
use tracon_vmsim::HostConfig;

/// A finished experiment run: the registry name plus the rendered
/// rows/series (what `print` methods used to write to stdout).
#[derive(Debug, Clone)]
pub struct Report {
    /// Registry name of the experiment that produced this report.
    pub name: &'static str,
    /// The rendered result table(s).
    pub rendered: String,
}

impl Report {
    /// Prints the rendered result.
    pub fn print(&self) {
        print!("{}", self.rendered);
    }
}

/// Lazily-built testbed shared by the experiments of one campaign run.
/// The profiling campaign only runs when the first testbed-consuming
/// experiment asks for it.
pub struct TestbedCache<'a> {
    cfg: &'a ExperimentConfig,
    tb: OnceLock<Testbed>,
}

impl<'a> TestbedCache<'a> {
    /// Creates an empty cache over a configuration.
    pub fn new(cfg: &'a ExperimentConfig) -> Self {
        TestbedCache {
            cfg,
            tb: OnceLock::new(),
        }
    }

    /// The testbed, building it (once) on first use.
    pub fn get(&self) -> &Testbed {
        self.tb.get_or_init(|| super::build_testbed(self.cfg))
    }
}

/// One runnable experiment of the evaluation. Implementations are unit
/// structs registered in [`REGISTRY`].
pub trait Experiment: Sync {
    /// Registry name (what `tracon experiment <name>` matches).
    fn name(&self) -> &'static str;
    /// One-line description for listings.
    fn description(&self) -> &'static str;
    /// Runs the experiment and renders its report.
    fn run(&self, cfg: &ExperimentConfig, testbed: &TestbedCache<'_>) -> Report;
}

/// Whether a configuration asks for test-sized (not merely thinned)
/// experiments — used by the drivers whose cost is set by their own
/// config structs rather than the shared sweep grids.
fn is_small(cfg: &ExperimentConfig) -> bool {
    cfg.testbed.time_scale <= 0.1
}

struct Table1Exp;
impl Experiment for Table1Exp {
    fn name(&self) -> &'static str {
        "table1"
    }
    fn description(&self) -> &'static str {
        "normalized App1 runtime under App2 interference (motivation)"
    }
    fn run(&self, _cfg: &ExperimentConfig, _testbed: &TestbedCache<'_>) -> Report {
        Report {
            name: self.name(),
            rendered: table1::run(HostConfig::testbed(), 1).render(),
        }
    }
}

struct Fig3Exp;
impl Experiment for Fig3Exp {
    fn name(&self) -> &'static str {
        "fig3"
    }
    fn description(&self) -> &'static str {
        "prediction errors of WMM/LM/NLM per benchmark (cross-validated)"
    }
    fn run(&self, _cfg: &ExperimentConfig, testbed: &TestbedCache<'_>) -> Report {
        Report {
            name: self.name(),
            rendered: fig3::run(testbed.get()).render(),
        }
    }
}

struct Fig4Exp;
impl Experiment for Fig4Exp {
    fn name(&self) -> &'static str {
        "fig4"
    }
    fn description(&self) -> &'static str {
        "MIBS speedup/IOBoost when driven by each model family"
    }
    fn run(&self, cfg: &ExperimentConfig, testbed: &TestbedCache<'_>) -> Report {
        Report {
            name: self.name(),
            rendered: fig4::run(testbed.get(), cfg.repetitions * 3, cfg.seed).render(),
        }
    }
}

struct Fig5And6Exp;
impl Experiment for Fig5And6Exp {
    fn name(&self) -> &'static str {
        "fig5_6"
    }
    fn description(&self) -> &'static str {
        "NLM-predicted extremes vs measured min/avg/max runtimes and IOPS"
    }
    fn run(&self, _cfg: &ExperimentConfig, testbed: &TestbedCache<'_>) -> Report {
        Report {
            name: self.name(),
            rendered: fig5_6::run(testbed.get()).render(),
        }
    }
}

struct Fig7Exp;
impl Experiment for Fig7Exp {
    fn name(&self) -> &'static str {
        "fig7"
    }
    fn description(&self) -> &'static str {
        "online model learning across a storage switch (local -> iSCSI)"
    }
    fn run(&self, cfg: &ExperimentConfig, _testbed: &TestbedCache<'_>) -> Report {
        let fig_cfg = if is_small(cfg) {
            fig7::Fig7Config::small()
        } else if cfg.testbed.calibration_points >= 125 {
            fig7::Fig7Config::full()
        } else {
            fig7::Fig7Config {
                initial_points: 200,
                stream_points: 200,
                ..fig7::Fig7Config::full()
            }
        };
        Report {
            name: self.name(),
            rendered: fig7::run(&fig_cfg).render(),
        }
    }
}

struct Fig8Exp;
impl Experiment for Fig8Exp {
    fn name(&self) -> &'static str {
        "fig8"
    }
    fn description(&self) -> &'static str {
        "static-workload MIBS speedups over FIFO across cluster sizes"
    }
    fn run(&self, cfg: &ExperimentConfig, testbed: &TestbedCache<'_>) -> Report {
        Report {
            name: self.name(),
            rendered: fig8::run(
                testbed.get(),
                &cfg.machine_counts,
                cfg.repetitions,
                cfg.seed,
            )
            .render(),
        }
    }
}

struct Fig9Exp;
impl Experiment for Fig9Exp {
    fn name(&self) -> &'static str {
        "fig9"
    }
    fn description(&self) -> &'static str {
        "dynamic normalized throughput vs arrival rate (MIBS/MIOS/MIX)"
    }
    fn run(&self, cfg: &ExperimentConfig, testbed: &TestbedCache<'_>) -> Report {
        Report {
            name: self.name(),
            rendered: fig9::run(
                testbed.get(),
                &cfg.lambdas,
                cfg.machines,
                cfg.sweep_repetitions,
                cfg.seed,
            )
            .render(),
        }
    }
}

struct Fig10Exp;
impl Experiment for Fig10Exp {
    fn name(&self) -> &'static str {
        "fig10"
    }
    fn description(&self) -> &'static str {
        "MIBS queue lengths vs arrival rate"
    }
    fn run(&self, cfg: &ExperimentConfig, testbed: &TestbedCache<'_>) -> Report {
        Report {
            name: self.name(),
            rendered: fig10::run(
                testbed.get(),
                &cfg.lambdas,
                cfg.machines,
                cfg.sweep_repetitions,
                cfg.seed,
            )
            .render(),
        }
    }
}

struct Fig11Exp;
impl Experiment for Fig11Exp {
    fn name(&self) -> &'static str {
        "fig11"
    }
    fn description(&self) -> &'static str {
        "scalability: normalized throughput vs machine count"
    }
    fn run(&self, cfg: &ExperimentConfig, testbed: &TestbedCache<'_>) -> Report {
        Report {
            name: self.name(),
            rendered: fig11::run(
                testbed.get(),
                &cfg.machine_counts,
                fig11::LAMBDA,
                cfg.sweep_repetitions,
                cfg.seed,
            )
            .render(),
        }
    }
}

struct Fig12Exp;
impl Experiment for Fig12Exp {
    fn name(&self) -> &'static str {
        "fig12"
    }
    fn description(&self) -> &'static str {
        "MIBS queue lengths vs machine count"
    }
    fn run(&self, cfg: &ExperimentConfig, testbed: &TestbedCache<'_>) -> Report {
        Report {
            name: self.name(),
            rendered: fig12::run(
                testbed.get(),
                &cfg.machine_counts,
                fig11::LAMBDA,
                cfg.sweep_repetitions,
                cfg.seed,
            )
            .render(),
        }
    }
}

struct ExtStorageExp;
impl Experiment for ExtStorageExp {
    fn name(&self) -> &'static str {
        "ext_storage"
    }
    fn description(&self) -> &'static str {
        "interference across storage devices (RAID/SSD/iSCSI extension)"
    }
    fn run(&self, cfg: &ExperimentConfig, _testbed: &TestbedCache<'_>) -> Report {
        Report {
            name: self.name(),
            rendered: ext_storage::run(cfg.ext_time_scale, 7).render(),
        }
    }
}

struct ExtDensityExp;
impl Experiment for ExtDensityExp {
    fn name(&self) -> &'static str {
        "ext_density"
    }
    fn description(&self) -> &'static str {
        "consolidation density beyond two VMs per machine (extension)"
    }
    fn run(&self, cfg: &ExperimentConfig, _testbed: &TestbedCache<'_>) -> Report {
        Report {
            name: self.name(),
            rendered: ext_density::run(cfg.ext_time_scale, 7).render(),
        }
    }
}

struct ExtAblationExp;
impl Experiment for ExtAblationExp {
    fn name(&self) -> &'static str {
        "ext_ablation"
    }
    fn description(&self) -> &'static str {
        "MIBS design-decision ablation (extension)"
    }
    fn run(&self, cfg: &ExperimentConfig, testbed: &TestbedCache<'_>) -> Report {
        Report {
            name: self.name(),
            rendered: ext_ablation::run(testbed.get(), cfg.repetitions * 3, cfg.seed).render(),
        }
    }
}

struct ExtAdaptiveExp;
impl Experiment for ExtAdaptiveExp {
    fn name(&self) -> &'static str {
        "ext_adaptive"
    }
    fn description(&self) -> &'static str {
        "online adaptation in the scheduling loop (extension)"
    }
    fn run(&self, cfg: &ExperimentConfig, _testbed: &TestbedCache<'_>) -> Report {
        // Keyed off the extension time scale so `--quick` campaigns get
        // the reduced cluster too (the full run builds two testbeds and
        // simulates six hours).
        let a_cfg = if cfg.ext_time_scale <= 0.1 {
            ext_adaptive::ExtAdaptiveConfig::small()
        } else {
            ext_adaptive::ExtAdaptiveConfig::full()
        };
        Report {
            name: self.name(),
            rendered: ext_adaptive::run(&a_cfg).render(),
        }
    }
}

struct ExtNetworkExp;
impl Experiment for ExtNetworkExp {
    fn name(&self) -> &'static str {
        "ext_network"
    }
    fn description(&self) -> &'static str {
        "network-aware vs oblivious scheduling on a mixed local/iSCSI cluster (extension)"
    }
    fn run(&self, cfg: &ExperimentConfig, testbed: &TestbedCache<'_>) -> Report {
        let n_cfg = if is_small(cfg) {
            ext_network::ExtNetworkConfig::small()
        } else {
            ext_network::ExtNetworkConfig::full()
        };
        Report {
            name: self.name(),
            rendered: ext_network::run(testbed.get(), &n_cfg).render(),
        }
    }
}

struct ExtFaultsExp;
impl Experiment for ExtFaultsExp {
    fn name(&self) -> &'static str {
        "ext_faults"
    }
    fn description(&self) -> &'static str {
        "scheduler comparison under machine churn and task failures (extension)"
    }
    fn run(&self, cfg: &ExperimentConfig, testbed: &TestbedCache<'_>) -> Report {
        let mut f_cfg = if is_small(cfg) {
            ext_faults::ExtFaultsConfig::small()
        } else {
            ext_faults::ExtFaultsConfig::full()
        };
        f_cfg.seed = cfg.seed;
        Report {
            name: self.name(),
            rendered: ext_faults::run(testbed.get(), &f_cfg).render(),
        }
    }
}

/// Every experiment of the evaluation, in the paper's presentation
/// order (motivation, models, schedulers, scale, extensions).
pub static REGISTRY: &[&dyn Experiment] = &[
    &Table1Exp,
    &Fig3Exp,
    &Fig4Exp,
    &Fig5And6Exp,
    &Fig7Exp,
    &Fig8Exp,
    &Fig9Exp,
    &Fig10Exp,
    &Fig11Exp,
    &Fig12Exp,
    &ExtStorageExp,
    &ExtDensityExp,
    &ExtAblationExp,
    &ExtAdaptiveExp,
    &ExtFaultsExp,
    &ExtNetworkExp,
];

/// Looks an experiment up by its registry name.
pub fn find(name: &str) -> Option<&'static dyn Experiment> {
    REGISTRY.iter().copied().find(|e| e.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_described() {
        let mut seen = std::collections::HashSet::new();
        for e in REGISTRY {
            assert!(seen.insert(e.name()), "duplicate name {}", e.name());
            assert!(!e.description().is_empty(), "{} undescribed", e.name());
        }
        assert_eq!(REGISTRY.len(), 16);
    }

    #[test]
    fn find_resolves_every_registered_name() {
        for e in REGISTRY {
            let found = find(e.name()).expect("registered name must resolve");
            assert_eq!(found.name(), e.name());
        }
        assert!(find("nope").is_none());
    }

    #[test]
    fn registry_runs_a_testbed_free_experiment() {
        let cfg = ExperimentConfig::small();
        let cache = TestbedCache::new(&cfg);
        let report = find("ext_storage").unwrap().run(&cfg, &cache);
        assert_eq!(report.name, "ext_storage");
        assert!(report.rendered.contains("SATA disk"));
        // The storage experiment never needs the profiled testbed.
        assert!(cache.tb.get().is_none());
    }
}
