//! Figs 5 and 6: NLM's ability to locate the extremes.
//!
//! Fig 5 compares each application's NLM-*predicted minimum* runtime
//! (over all possible co-located partners) against the *measured*
//! minimum, average, and maximum runtimes. Fig 6 does the same for the
//! predicted *maximum* IOPS. Paper shape: the predicted minimum runtime
//! tracks the measured minimum and never exceeds the measured average;
//! the predicted maximum IOPS sits close to the measured maximum.

use crate::setup::Testbed;

/// One application's row in Fig 5 or Fig 6.
#[derive(Debug, Clone)]
pub struct ExtremeRow {
    /// Application name.
    pub app: String,
    /// NLM-predicted extreme (min runtime for Fig 5, max IOPS for Fig 6).
    pub predicted: f64,
    /// Measured minimum over all partners.
    pub measured_min: f64,
    /// Measured average over all partners.
    pub measured_avg: f64,
    /// Measured maximum over all partners.
    pub measured_max: f64,
}

/// The combined Fig 5 + Fig 6 result.
#[derive(Debug, Clone)]
pub struct Fig5And6 {
    /// Fig 5 rows (runtime; web excluded as in the paper).
    pub runtime: Vec<ExtremeRow>,
    /// Fig 6 rows (IOPS).
    pub iops: Vec<ExtremeRow>,
    /// Spearman rank correlation between predicted and measured pair
    /// runtimes, per application: the ordering quality the scheduler
    /// consumes (1.0 = every neighbour ranked correctly).
    pub rank_correlation: Vec<(String, f64)>,
}

/// Runs the Fig 5/6 analysis on a built testbed.
pub fn run(testbed: &Testbed) -> Fig5And6 {
    let perf = &testbed.perf;
    let n = perf.n_apps();
    let mut runtime = Vec::new();
    let mut iops = Vec::new();
    let mut rank_correlation = Vec::new();
    for a in 0..n {
        let name = perf.names[a].clone();
        // Predicted extremes over every possible partner.
        let mut pred_min_rt = f64::INFINITY;
        let mut pred_max_io = 0.0f64;
        for b in 0..n {
            let other = &perf.names[b];
            let rt = testbed.predictor.predict_pair_runtime(&name, other);
            let io = testbed.predictor.predict_pair_iops(&name, other);
            pred_min_rt = pred_min_rt.min(rt);
            pred_max_io = pred_max_io.max(io);
        }
        // Measured extremes from the pair matrix.
        let rts: Vec<f64> = (0..n).map(|b| perf.runtime(a, b)).collect();
        let ios: Vec<f64> = (0..n).map(|b| perf.iops(a, b)).collect();
        // Ordering quality: do the predictions rank neighbours like the
        // measurements do?
        let preds: Vec<f64> = (0..n)
            .map(|b| {
                testbed
                    .predictor
                    .predict_pair_runtime(&name, &perf.names[b])
            })
            .collect();
        rank_correlation.push((name.clone(), tracon_stats::spearman(&preds, &rts)));
        if name != "web" {
            runtime.push(ExtremeRow {
                app: name.clone(),
                predicted: pred_min_rt,
                measured_min: tracon_stats::descriptive::min(&rts),
                measured_avg: tracon_stats::mean(&rts),
                measured_max: tracon_stats::descriptive::max(&rts),
            });
        }
        iops.push(ExtremeRow {
            app: name,
            predicted: pred_max_io,
            measured_min: tracon_stats::descriptive::min(&ios),
            measured_avg: tracon_stats::mean(&ios),
            measured_max: tracon_stats::descriptive::max(&ios),
        });
    }
    Fig5And6 {
        runtime,
        iops,
        rank_correlation,
    }
}

impl Fig5And6 {
    fn render_panel(header: &str, rows: &[ExtremeRow]) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{header}");
        let _ = writeln!(
            out,
            "{:10} {:>10} {:>10} {:>10} {:>10}",
            "benchmark", "predicted", "meas min", "meas avg", "meas max"
        );
        for r in rows {
            let _ = writeln!(
                out,
                "{:10} {:10.1} {:10.1} {:10.1} {:10.1}",
                r.app, r.predicted, r.measured_min, r.measured_avg, r.measured_max
            );
        }
        out
    }

    /// Renders both figures' series.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = Self::render_panel(
            "Fig 5: NLM predicted minimum runtime vs measured min/avg/max (s)",
            &self.runtime,
        );
        let _ = writeln!(out);
        out.push_str(&Self::render_panel(
            "Fig 6: NLM predicted maximum IOPS vs measured min/avg/max",
            &self.iops,
        ));
        let _ = writeln!(
            out,
            "\nneighbour-ranking quality (Spearman rho, predicted vs measured runtimes):"
        );
        for (app, rho) in &self.rank_correlation {
            let _ = writeln!(out, "  {app:10} {rho:+.3}");
        }
        out
    }

    /// Prints both figures' series.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::tests::shared;

    #[test]
    fn predicted_min_runtime_tracks_measured_min() {
        let tb = shared();
        let fig = run(tb);
        for r in &fig.runtime {
            // The paper: "the predicted minimum never goes beyond the
            // measured average or maximum runtimes".
            assert!(
                r.predicted <= r.measured_avg * 1.05,
                "{}: predicted {} above measured avg {}",
                r.app,
                r.predicted,
                r.measured_avg
            );
            // And it should sit near the measured minimum.
            assert!(
                (r.predicted - r.measured_min).abs() / r.measured_min < 0.5,
                "{}: predicted {} far from measured min {}",
                r.app,
                r.predicted,
                r.measured_min
            );
        }
    }

    #[test]
    fn predicted_max_iops_close_to_measured_max() {
        let tb = shared();
        let fig = run(tb);
        for r in &fig.iops {
            assert!(
                r.predicted >= r.measured_min,
                "{}: predicted max IOPS {} below measured min {}",
                r.app,
                r.predicted,
                r.measured_min
            );
            assert!(
                (r.predicted - r.measured_max).abs() / r.measured_max < 0.5,
                "{}: predicted {} far from measured max {}",
                r.app,
                r.predicted,
                r.measured_max
            );
        }
    }

    #[test]
    fn predictions_rank_neighbours_correctly_for_sensitive_apps() {
        let tb = shared();
        let fig = run(tb);
        // The scheduler only needs the ordering, and only for the
        // applications that actually care where they land. Insensitive
        // apps (email, web) have near-constant predictions — their rho is
        // legitimately ~0 and harmless.
        for sensitive in ["blastn", "dedup", "video"] {
            let (_, rho) = fig
                .rank_correlation
                .iter()
                .find(|(n, _)| n == sensitive)
                .expect("app present");
            assert!(*rho > 0.6, "{sensitive}: Spearman rho {rho}");
        }
    }

    #[test]
    fn web_excluded_from_runtime_panel() {
        let tb = shared();
        let fig = run(tb);
        assert!(fig.runtime.iter().all(|r| r.app != "web"));
        assert_eq!(fig.iops.len(), 8);
        assert_eq!(fig.runtime.len(), 7);
    }
}
