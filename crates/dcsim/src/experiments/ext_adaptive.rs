//! Extension experiment: the full TRACON control loop inside the data
//! center (paper Fig 2 — the task & resource monitor feeding realized
//! measurements back into the prediction models while the system runs).
//!
//! A data center is deployed with a *stale* prediction module — models
//! trained for a host whose storage has since been replaced (the Fig 7
//! scenario, now at cluster scale). The adaptive arm runs as ONE
//! continuous simulation with an [`AdaptiveObserver`] attached: every
//! completion feeds the per-application monitors, and whenever a monitor
//! rebuild fires the kernel swaps the scheduler's predictor *mid-run* —
//! no segment restarts, no post-hoc replay. We compare:
//!
//! * **stale** — the mismatched predictor, never updated,
//! * **adaptive** — the same starting point, adapted online by the
//!   monitor as the simulation runs,
//! * **fresh** — a predictor trained for the actual environment (upper
//!   reference).
//!
//! The reporting stays segmented: completions of the continuous adaptive
//! run are bucketed into wall-clock segments, and each segment's
//! prediction error is measured against the predictor snapshot the
//! scheduler held at that segment's start.

use crate::arrival::{poisson_trace, ArrivalEvent, WorkloadMix};
use crate::engine::{AdaptiveObserver, CompletionInfo, SchedulerKind, SimObserver, Simulation};
use crate::perf::IDLE;
use crate::setup::{training_data, Testbed, TestbedConfig};
use std::collections::BTreeMap;
use tracon_core::{
    AppModelSet, AppProfile, Characteristics, ModelKind, MonitorConfig, Objective, Predictor,
    Response, ResponseScale, TrainingData,
};
use tracon_vmsim::HostConfig;

/// Parameters of the adaptation-in-the-loop experiment.
#[derive(Debug, Clone)]
pub struct ExtAdaptiveConfig {
    /// Number of machines.
    pub machines: usize,
    /// Arrival rate, tasks/minute.
    pub lambda: f64,
    /// Segment length, seconds (reporting granularity of the continuous
    /// adaptive run; the stale/fresh reference arms run per segment).
    pub segment_s: f64,
    /// Number of segments.
    pub segments: usize,
    /// Testbed time scale.
    pub time_scale: f64,
    /// Base seed.
    pub seed: u64,
}

impl ExtAdaptiveConfig {
    /// Full-scale settings.
    pub fn full() -> Self {
        ExtAdaptiveConfig {
            machines: 32,
            lambda: 60.0,
            segment_s: 3600.0,
            segments: 6,
            time_scale: 0.25,
            seed: 0xADA97,
        }
    }

    /// Reduced settings for tests.
    pub fn small() -> Self {
        ExtAdaptiveConfig {
            machines: 8,
            lambda: 30.0,
            segment_s: 1200.0,
            segments: 4,
            time_scale: 0.08,
            seed: 0xADA97,
        }
    }
}

/// Per-segment outcome for the three predictors.
#[derive(Debug, Clone)]
pub struct SegmentRow {
    /// Segment index (0-based).
    pub segment: usize,
    /// Completed tasks with the stale predictor.
    pub stale: usize,
    /// Completed tasks with the adaptive predictor (continuous run,
    /// bucketed by completion time).
    pub adaptive: usize,
    /// Completed tasks with the environment-matched predictor.
    pub fresh: usize,
    /// Mean relative runtime-prediction error of the predictor snapshot
    /// the scheduler held at the segment's start, on the segment's
    /// realized observations.
    pub adaptive_error: f64,
}

/// The experiment result.
#[derive(Debug, Clone)]
pub struct ExtAdaptive {
    /// One row per segment.
    pub rows: Vec<SegmentRow>,
    /// Monitor rebuilds across all per-application models during the
    /// continuous adaptive run.
    pub rebuilds: usize,
    /// Drift events the monitors flagged during the adaptive run.
    pub drifts: usize,
    /// How many times the kernel swapped the scheduler's predictor
    /// mid-simulation.
    pub predictor_swaps: usize,
    /// Completions the monitor observed in the adaptive run.
    pub observed: usize,
}

/// Builds a predictor from a profile source testbed, but keeping the
/// *deployment* testbed's solo statistics (the monitor knows the current
/// solo profiles; only the interference models are stale).
fn stale_predictor(deploy: &Testbed, profile_source: &Testbed) -> Predictor {
    let mut p = Predictor::new();
    let ids = tracon_core::AppRegistry::from_names(deploy.perf.names.iter().cloned());
    for set in &profile_source.profiles {
        let runtime = tracon_core::train_model_scaled(
            ModelKind::Nonlinear,
            &training_data(set, Response::Runtime),
            ResponseScale::for_response(Response::Runtime),
        );
        let iops = tracon_core::train_model_scaled(
            ModelKind::Nonlinear,
            &training_data(set, Response::Iops),
            ResponseScale::for_response(Response::Iops),
        );
        let name = set.target.clone();
        let i = deploy.perf.index_of_id(ids.expect_id(&name));
        p.add_app(
            AppProfile {
                name,
                solo: deploy.app_chars[&set.target],
                solo_runtime: deploy.perf.solo_runtime(i),
                solo_iops: deploy.perf.solo_iops(i),
            },
            AppModelSet { runtime, iops },
        );
    }
    p
}

/// Distills the stale predictor's behaviour into per-application training
/// sets (pair-table index order) by sampling its predictions over the
/// known neighbour profiles plus the idle slot. These seed the monitor
/// windows so the adaptive models start exactly as wrong as the deployed
/// stale module.
fn distill(deploy: &Testbed, base: &Predictor) -> (Vec<TrainingData>, Vec<TrainingData>) {
    let mut rt_all = Vec::new();
    let mut io_all = Vec::new();
    for name in &deploy.perf.names {
        let mut rt = TrainingData::default();
        let mut io = TrainingData::default();
        let t = deploy.app_chars[name];
        for nb_name in &deploy.perf.names {
            let nb = deploy.app_chars[nb_name];
            let f = tracon_core::joint_features(&t, &nb);
            rt.push(f, base.predict_runtime(name, &nb));
            io.push(f, base.predict_iops(name, &nb));
        }
        let idle = Characteristics::idle();
        let f = tracon_core::joint_features(&t, &idle);
        rt.push(f, base.predict_runtime(name, &idle));
        io.push(f, base.predict_iops(name, &idle));
        rt_all.push(rt);
        io_all.push(io);
    }
    (rt_all, io_all)
}

/// Wraps the [`AdaptiveObserver`] with wall-clock segmentation: buckets
/// completions per segment and measures each segment's realized runtimes
/// against the predictor snapshot the scheduler held when the segment
/// began. Individual task runtimes vary hugely under neighbour churn (a
/// co-resident may depart seconds after placement), so the error is
/// evaluated against the *class-conditional mean* — the average realized
/// runtime per (application, neighbour-at-start) class — which isolates
/// model staleness from irreducible outcome noise.
struct SegmentTracker {
    inner: AdaptiveObserver,
    segment_s: f64,
    segments: usize,
    current: usize,
    /// Predictor snapshot at the current segment's start.
    snapshot: Predictor,
    /// (app, neighbour-at-start) -> (runtime sum, count), this segment.
    groups: BTreeMap<(usize, usize), (f64, usize)>,
    completed: usize,
    /// Finalized (completed, error) per segment.
    done: Vec<(usize, f64)>,
}

impl SegmentTracker {
    fn new(inner: AdaptiveObserver, segment_s: f64, segments: usize) -> Self {
        let snapshot = inner.export_predictor();
        SegmentTracker {
            inner,
            segment_s,
            segments,
            current: 0,
            snapshot,
            groups: BTreeMap::new(),
            completed: 0,
            done: Vec::new(),
        }
    }

    fn finalize_segment(&mut self) {
        let mut errors = Vec::new();
        for (&(app, nb), &(sum, count)) in &self.groups {
            let name = &self.inner.app_names()[app];
            let nb_chars = if nb == IDLE {
                Characteristics::idle()
            } else {
                self.inner.solo_chars(nb)
            };
            let pred = self.snapshot.predict_runtime(name, &nb_chars);
            let group_mean = sum / count as f64;
            // Weight each class by its observation count.
            for _ in 0..count {
                errors.push(tracon_core::relative_error(pred, group_mean));
            }
        }
        self.done
            .push((self.completed, tracon_stats::mean(&errors)));
        self.groups.clear();
        self.completed = 0;
        self.snapshot = self.inner.export_predictor();
    }

    fn advance_to(&mut self, seg: usize) {
        while self.current < seg && self.current + 1 < self.segments {
            self.finalize_segment();
            self.current += 1;
        }
    }

    /// Flushes the open segment and returns the per-segment series plus
    /// the inner observer.
    fn finish(mut self) -> (Vec<(usize, f64)>, AdaptiveObserver) {
        while self.done.len() < self.segments {
            self.finalize_segment();
        }
        (self.done, self.inner)
    }
}

impl SimObserver for SegmentTracker {
    fn on_completion(&mut self, info: &CompletionInfo) {
        let seg = ((info.time / self.segment_s).floor() as usize).min(self.segments - 1);
        self.advance_to(seg);
        self.completed += 1;
        if info.runtime >= 1.0 {
            // Degenerate records clipped by the horizon are skipped.
            let e = self
                .groups
                .entry((info.app_idx, info.neighbor_at_start))
                .or_insert((0.0, 0));
            e.0 += info.runtime;
            e.1 += 1;
        }
        self.inner.on_completion(info);
    }

    fn updated_predictor(&mut self) -> Option<Predictor> {
        self.inner.updated_predictor()
    }
}

/// Runs the adaptation-in-the-loop experiment.
pub fn run(cfg: &ExtAdaptiveConfig) -> ExtAdaptive {
    // Deployment environment: local SATA. Stale profiles: iSCSI host.
    let deploy = Testbed::build(&TestbedConfig {
        host: HostConfig::testbed(),
        time_scale: cfg.time_scale,
        model_kind: ModelKind::Nonlinear,
        calibration_points: 45,
        seed: cfg.seed,
    });
    let stale_src = Testbed::build(&TestbedConfig {
        host: HostConfig::class("iscsi"),
        time_scale: cfg.time_scale,
        model_kind: ModelKind::Nonlinear,
        calibration_points: 45,
        seed: cfg.seed.wrapping_add(1),
    });
    let stale = stale_predictor(&deploy, &stale_src);

    // Per-segment arrival traces (shared by all three arms; the adaptive
    // arm sees them concatenated on one continuous clock).
    let traces: Vec<Vec<ArrivalEvent>> = (0..cfg.segments)
        .map(|seg| {
            let seed = cfg.seed.wrapping_add(100 + seg as u64);
            poisson_trace(cfg.lambda, cfg.segment_s, WorkloadMix::Medium, seed)
        })
        .collect();
    let mut combined: Vec<ArrivalEvent> = Vec::new();
    for (seg, trace) in traces.iter().enumerate() {
        let offset = seg as f64 * cfg.segment_s;
        combined.extend(trace.iter().map(|a| ArrivalEvent {
            time: a.time + offset,
            app_idx: a.app_idx,
        }));
    }

    // The adaptive arm: one continuous simulation. The monitors start
    // from the stale module's behaviour (distilled into their windows)
    // and rebuild with the WMM every `rebuild_every` realized
    // observations — the observation stream only covers the known
    // neighbour classes, where local interpolation is the right tool.
    let (init_rt, init_io) = distill(&deploy, &stale);
    let monitor_cfg = MonitorConfig {
        window_capacity: 60,
        rebuild_every: 20,
        ..MonitorConfig::default()
    };
    let observer = AdaptiveObserver::new(
        &stale,
        &deploy.perf.names,
        ModelKind::Wmm,
        &init_rt,
        &init_io,
        monitor_cfg,
    );
    let initial = observer.export_predictor();
    let mut tracker = SegmentTracker::new(observer, cfg.segment_s, cfg.segments);
    let horizon = cfg.segments as f64 * cfg.segment_s;
    Simulation::new(&deploy, cfg.machines, SchedulerKind::Mibs(8))
        .with_objective(Objective::MinRuntime)
        .with_queue_capacity(8)
        .with_predictor(&initial)
        .run_with_observer(&combined, Some(horizon), &mut tracker);
    let (adaptive_rows, observer) = tracker.finish();

    // Reference arms, per segment: the stale predictor and the
    // environment-matched one.
    let mut rows = Vec::new();
    for (seg, trace) in traces.iter().enumerate() {
        let r_stale = Simulation::new(&deploy, cfg.machines, SchedulerKind::Mibs(8))
            .with_objective(Objective::MinRuntime)
            .with_queue_capacity(8)
            .with_predictor(&stale)
            .run(trace, Some(cfg.segment_s));
        let r_fresh = Simulation::new(&deploy, cfg.machines, SchedulerKind::Mibs(8))
            .with_objective(Objective::MinRuntime)
            .with_queue_capacity(8)
            .run(trace, Some(cfg.segment_s));
        let (adaptive, adaptive_error) = adaptive_rows[seg];
        rows.push(SegmentRow {
            segment: seg,
            stale: r_stale.completed,
            adaptive,
            fresh: r_fresh.completed,
            adaptive_error,
        });
    }
    ExtAdaptive {
        rows,
        rebuilds: observer.total_rebuilds(),
        drifts: observer.total_drifts(),
        predictor_swaps: observer.predictor_swaps(),
        observed: observer.observed(),
    }
}

impl ExtAdaptive {
    /// Renders the per-segment series.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Adaptation-in-the-loop extension: MIBS_8 throughput per segment"
        );
        let _ = writeln!(
            out,
            "{:>8} {:>10} {:>10} {:>10} {:>18}",
            "segment", "stale", "adaptive", "fresh", "adaptive rt error"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:>8} {:>10} {:>10} {:>10} {:>17.1}%",
                r.segment,
                r.stale,
                r.adaptive,
                r.fresh,
                r.adaptive_error * 100.0
            );
        }
        let _ = writeln!(
            out,
            "\nmonitor: {} completions observed, {} model rebuilds, {} drift events,",
            self.observed, self.rebuilds, self.drifts
        );
        let _ = writeln!(out, "{} mid-run predictor swaps", self.predictor_swaps);
        let _ = writeln!(
            out,
            "\nThe adaptive arm starts from the stale (wrong-storage) models and adapts"
        );
        let _ = writeln!(
            out,
            "online: every completion feeds the monitor, and each rebuild swaps the"
        );
        let _ = writeln!(
            out,
            "scheduler's predictor mid-simulation; its prediction error collapses after"
        );
        let _ = writeln!(
            out,
            "the first segment and its throughput tracks the environment-matched one."
        );
        out
    }

    /// Prints the per-segment series.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptation_reduces_prediction_error() {
        let fig = run(&ExtAdaptiveConfig::small());
        let first = fig.rows.first().unwrap();
        let last = fig.rows.last().unwrap();
        assert!(
            first.adaptive_error > 0.15,
            "stale models should start wrong: {}",
            first.adaptive_error
        );
        assert!(
            last.adaptive_error < first.adaptive_error * 0.5,
            "adaptation should halve the error: {} -> {}",
            first.adaptive_error,
            last.adaptive_error
        );
    }

    #[test]
    fn adaptive_throughput_not_worse_than_stale() {
        let fig = run(&ExtAdaptiveConfig::small());
        // After warm-up, the adaptive predictor should not trail the stale
        // one (sum over the post-warm-up segments).
        let adaptive: usize = fig.rows.iter().skip(1).map(|r| r.adaptive).sum();
        let stale: usize = fig.rows.iter().skip(1).map(|r| r.stale).sum();
        assert!(
            adaptive as f64 >= stale as f64 * 0.97,
            "adaptive {adaptive} vs stale {stale}"
        );
    }

    #[test]
    fn monitor_adapts_mid_simulation() {
        let fig = run(&ExtAdaptiveConfig::small());
        assert!(fig.observed > 0, "monitor saw no completions");
        assert!(
            fig.rebuilds > 0,
            "monitor never rebuilt a model mid-run: {} observations",
            fig.observed
        );
        assert!(
            fig.predictor_swaps > 0,
            "kernel never swapped the predictor mid-run"
        );
    }
}
