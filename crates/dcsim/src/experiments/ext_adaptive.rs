//! Extension experiment: the full TRACON control loop inside the data
//! center (paper Fig 2 — the task & resource monitor feeding realized
//! measurements back into the prediction models while the system runs).
//!
//! A data center is deployed with a *stale* prediction module — models
//! trained for a host whose storage has since been replaced (the Fig 7
//! scenario, now at cluster scale). The simulation runs in segments; after
//! each segment the monitor's realized observations retrain the models,
//! and the scheduler immediately uses the updated predictor. We compare:
//!
//! * **stale** — the mismatched predictor, never updated,
//! * **adaptive** — the same starting point, retrained between segments,
//! * **fresh** — a predictor trained for the actual environment (upper
//!   reference).

use crate::arrival::{poisson_trace, WorkloadMix};
use crate::engine::{SchedulerKind, Simulation};
use crate::setup::{training_data, Testbed, TestbedConfig};
use tracon_core::{
    AppModelSet, AppProfile, ModelKind, Objective, Predictor, Response, ResponseScale, TrainingData,
};
use tracon_vmsim::HostConfig;

/// Parameters of the adaptation-in-the-loop experiment.
#[derive(Debug, Clone)]
pub struct ExtAdaptiveConfig {
    /// Number of machines.
    pub machines: usize,
    /// Arrival rate, tasks/minute.
    pub lambda: f64,
    /// Segment length, seconds.
    pub segment_s: f64,
    /// Number of segments.
    pub segments: usize,
    /// Testbed time scale.
    pub time_scale: f64,
    /// Base seed.
    pub seed: u64,
}

impl ExtAdaptiveConfig {
    /// Full-scale settings.
    pub fn full() -> Self {
        ExtAdaptiveConfig {
            machines: 32,
            lambda: 60.0,
            segment_s: 3600.0,
            segments: 6,
            time_scale: 0.25,
            seed: 0xADA97,
        }
    }

    /// Reduced settings for tests.
    pub fn small() -> Self {
        ExtAdaptiveConfig {
            machines: 8,
            lambda: 30.0,
            segment_s: 1200.0,
            segments: 4,
            time_scale: 0.08,
            seed: 0xADA97,
        }
    }
}

/// Per-segment outcome for the three predictors.
#[derive(Debug, Clone)]
pub struct SegmentRow {
    /// Segment index (0-based).
    pub segment: usize,
    /// Completed tasks with the stale predictor.
    pub stale: usize,
    /// Completed tasks with the adaptive predictor (as trained so far).
    pub adaptive: usize,
    /// Completed tasks with the environment-matched predictor.
    pub fresh: usize,
    /// Mean relative runtime-prediction error of the adaptive predictor on
    /// the segment's realized observations (before retraining on them).
    pub adaptive_error: f64,
}

/// The experiment result.
#[derive(Debug, Clone)]
pub struct ExtAdaptive {
    /// One row per segment.
    pub rows: Vec<SegmentRow>,
}

/// Builds a predictor from a profile source testbed, but keeping the
/// *deployment* testbed's solo statistics (the monitor knows the current
/// solo profiles; only the interference models are stale).
fn stale_predictor(deploy: &Testbed, profile_source: &Testbed) -> Predictor {
    let mut p = Predictor::new();
    for set in &profile_source.profiles {
        let runtime = tracon_core::train_model_scaled(
            ModelKind::Nonlinear,
            &training_data(set, Response::Runtime),
            ResponseScale::for_response(Response::Runtime),
        );
        let iops = tracon_core::train_model_scaled(
            ModelKind::Nonlinear,
            &training_data(set, Response::Iops),
            ResponseScale::for_response(Response::Iops),
        );
        let name = set.target.clone();
        let i = deploy.perf.index_of(&name);
        p.add_app(
            AppProfile {
                name,
                solo: deploy.app_chars[&set.target],
                solo_runtime: deploy.perf.solo_runtime(i),
                solo_iops: deploy.perf.solo_iops(i),
            },
            AppModelSet { runtime, iops },
        );
    }
    p
}

/// Retrains a predictor for the deployment testbed from accumulated
/// monitor observations (per-app feature/response pairs).
fn retrain_from_observations(
    deploy: &Testbed,
    base: &Predictor,
    rt_data: &std::collections::HashMap<String, TrainingData>,
    io_data: &std::collections::HashMap<String, TrainingData>,
) -> Predictor {
    let mut p = Predictor::new();
    for name in deploy.perf.names.clone() {
        let i = deploy.perf.index_of(&name);
        let profile = AppProfile {
            name: name.clone(),
            solo: deploy.app_chars[&name],
            solo_runtime: deploy.perf.solo_runtime(i),
            solo_iops: deploy.perf.solo_iops(i),
        };
        // Enough fresh observations? Retrain with the WMM (the observation
        // stream only covers the 9 neighbour classes, where local
        // interpolation is the right tool). Otherwise keep predicting with
        // the stale model via a pass-through trained on its own outputs.
        let enough = rt_data.get(&name).map(|d| d.len() >= 12).unwrap_or(false);
        if enough {
            let runtime = tracon_core::train_model_scaled(
                ModelKind::Wmm,
                &rt_data[&name],
                ResponseScale::Linear,
            );
            let iops = tracon_core::train_model_scaled(
                ModelKind::Wmm,
                &io_data[&name],
                ResponseScale::Linear,
            );
            p.add_app(profile, AppModelSet { runtime, iops });
        } else {
            // Distill the stale model's behaviour so the new predictor is
            // self-contained: sample its predictions over the known
            // neighbour profiles.
            let mut rt = TrainingData::default();
            let mut io = TrainingData::default();
            let t = deploy.app_chars[&name];
            for nb_name in deploy.perf.names.clone() {
                let nb = deploy.app_chars[&nb_name];
                let f = tracon_core::joint_features(&t, &nb);
                rt.push(f, base.predict_runtime(&name, &nb));
                io.push(f, base.predict_iops(&name, &nb));
            }
            let idle = tracon_core::Characteristics::idle();
            let f = tracon_core::joint_features(&t, &idle);
            rt.push(f, base.predict_runtime(&name, &idle));
            io.push(f, base.predict_iops(&name, &idle));
            let runtime =
                tracon_core::train_model_scaled(ModelKind::Wmm, &rt, ResponseScale::Linear);
            let iops = tracon_core::train_model_scaled(ModelKind::Wmm, &io, ResponseScale::Linear);
            p.add_app(profile, AppModelSet { runtime, iops });
        }
    }
    p
}

/// Runs the adaptation-in-the-loop experiment.
pub fn run(cfg: &ExtAdaptiveConfig) -> ExtAdaptive {
    // Deployment environment: local SATA. Stale profiles: iSCSI host.
    let deploy = Testbed::build(&TestbedConfig {
        host: HostConfig::testbed(),
        time_scale: cfg.time_scale,
        model_kind: ModelKind::Nonlinear,
        calibration_points: 45,
        seed: cfg.seed,
    });
    let stale_src = Testbed::build(&TestbedConfig {
        host: HostConfig::testbed_iscsi(),
        time_scale: cfg.time_scale,
        model_kind: ModelKind::Nonlinear,
        calibration_points: 45,
        seed: cfg.seed.wrapping_add(1),
    });
    let stale = stale_predictor(&deploy, &stale_src);

    let mut adaptive =
        retrain_from_observations(&deploy, &stale, &Default::default(), &Default::default());
    let mut rt_obs: std::collections::HashMap<String, TrainingData> = Default::default();
    let mut io_obs: std::collections::HashMap<String, TrainingData> = Default::default();

    let mut rows = Vec::new();
    for seg in 0..cfg.segments {
        let seed = cfg.seed.wrapping_add(100 + seg as u64);
        let trace = poisson_trace(cfg.lambda, cfg.segment_s, WorkloadMix::Medium, seed);
        let run_with = |p: &Predictor| {
            Simulation::new(&deploy, cfg.machines, SchedulerKind::Mibs(8))
                .with_objective(Objective::MinRuntime)
                .with_queue_capacity(8)
                .with_predictor(p)
                .with_observation_collection()
                .run(&trace, Some(cfg.segment_s))
        };
        let r_stale = run_with(&stale);
        let r_adaptive = run_with(&adaptive);
        let r_fresh = Simulation::new(&deploy, cfg.machines, SchedulerKind::Mibs(8))
            .with_objective(Objective::MinRuntime)
            .with_queue_capacity(8)
            .run(&trace, Some(cfg.segment_s));

        // Error of the adaptive predictor on the segment's realized data,
        // before retraining. Individual task runtimes vary hugely under
        // neighbour churn (a co-resident may depart seconds after
        // placement), so the monitor evaluates the model against the
        // *class-conditional mean* — the average realized runtime per
        // (application, neighbour-at-start) class — which isolates model
        // staleness from irreducible outcome noise.
        let mut groups: std::collections::HashMap<[u64; 8], (f64, usize)> = Default::default();
        for obs in r_adaptive.observations.iter() {
            if obs.runtime < 1.0 {
                continue; // degenerate record clipped by segment edges
            }
            let key: [u64; 8] = std::array::from_fn(|i| obs.features[i].to_bits());
            let e = groups.entry(key).or_insert((0.0, 0));
            e.0 += obs.runtime;
            e.1 += 1;
        }
        let mut errors = Vec::new();
        for (key, (sum, count)) in &groups {
            let features: [f64; 8] = std::array::from_fn(|i| f64::from_bits(key[i]));
            if let Some(name) = deploy
                .perf
                .names
                .iter()
                .find(|n| deploy.app_chars[*n].as_array() == features[..4])
            {
                let nb = tracon_core::Characteristics::from_array([
                    features[4],
                    features[5],
                    features[6],
                    features[7],
                ]);
                let pred = adaptive.predict_runtime(name, &nb);
                let group_mean = sum / *count as f64;
                // Weight each class by its observation count.
                for _ in 0..*count {
                    errors.push(tracon_core::relative_error(pred, group_mean));
                }
            }
        }
        let adaptive_error = tracon_stats::mean(&errors);

        // Feed the monitor's observations into the per-app training pools
        // and retrain.
        for obs in &r_adaptive.observations {
            if obs.runtime < 1.0 {
                continue;
            }
            if let Some(name) = deploy
                .perf
                .names
                .iter()
                .find(|n| deploy.app_chars[*n].as_array() == obs.features[..4])
            {
                rt_obs
                    .entry(name.clone())
                    .or_default()
                    .push(obs.features, obs.runtime);
                io_obs
                    .entry(name.clone())
                    .or_default()
                    .push(obs.features, obs.iops);
            }
        }
        adaptive = retrain_from_observations(&deploy, &stale, &rt_obs, &io_obs);

        rows.push(SegmentRow {
            segment: seg,
            stale: r_stale.completed,
            adaptive: r_adaptive.completed,
            fresh: r_fresh.completed,
            adaptive_error,
        });
    }
    ExtAdaptive { rows }
}

impl ExtAdaptive {
    /// Prints the per-segment series.
    pub fn print(&self) {
        println!("Adaptation-in-the-loop extension: MIBS_8 throughput per segment");
        println!(
            "{:>8} {:>10} {:>10} {:>10} {:>18}",
            "segment", "stale", "adaptive", "fresh", "adaptive rt error"
        );
        for r in &self.rows {
            println!(
                "{:>8} {:>10} {:>10} {:>10} {:>17.1}%",
                r.segment,
                r.stale,
                r.adaptive,
                r.fresh,
                r.adaptive_error * 100.0
            );
        }
        println!("\nThe adaptive predictor starts from the stale (wrong-storage) models and");
        println!("retrains on the monitor's realized observations after every segment; its");
        println!("prediction error collapses after the first segment and its throughput");
        println!("tracks the environment-matched predictor.");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptation_reduces_prediction_error() {
        let fig = run(&ExtAdaptiveConfig::small());
        let first = fig.rows.first().unwrap();
        let last = fig.rows.last().unwrap();
        assert!(
            first.adaptive_error > 0.15,
            "stale models should start wrong: {}",
            first.adaptive_error
        );
        assert!(
            last.adaptive_error < first.adaptive_error * 0.5,
            "adaptation should halve the error: {} -> {}",
            first.adaptive_error,
            last.adaptive_error
        );
    }

    #[test]
    fn adaptive_throughput_not_worse_than_stale() {
        let fig = run(&ExtAdaptiveConfig::small());
        // After warm-up, the adaptive predictor should not trail the stale
        // one (sum over the post-warm-up segments).
        let adaptive: usize = fig.rows.iter().skip(1).map(|r| r.adaptive).sum();
        let stale: usize = fig.rows.iter().skip(1).map(|r| r.stale).sum();
        assert!(
            adaptive as f64 >= stale as f64 * 0.97,
            "adaptive {adaptive} vs stale {stale}"
        );
    }
}
