//! An oracle prediction module backed directly by the measured pair
//! table: it answers scheduler queries with the *actual* steady-state
//! runtime/IOPS of an application next to the queried neighbour.
//!
//! The oracle is an analysis tool, not part of TRACON: it upper-bounds
//! what any interference model could give the schedulers, separating
//! "the heuristic is weak" from "the model is inaccurate" (an ablation
//! called out in DESIGN.md).

use crate::perf::{PerfTable, IDLE};
use crate::setup::Testbed;
use tracon_core::characteristics::N_JOINT;
use tracon_core::{
    AppModelSet, AppProfile, Characteristics, InterferenceModel, ModelKind, Predictor,
};

/// Which response the oracle model reports.
#[derive(Debug, Clone, Copy)]
enum OracleResponse {
    Runtime,
    Iops,
}

/// Oracle model for one application: matches the queried background
/// characteristics to the nearest known application profile and returns
/// the measured pair statistic.
struct OracleModel {
    app_idx: usize,
    response: OracleResponse,
    /// `(background profile features, background index)` for each known
    /// application, plus the idle VM.
    backgrounds: Vec<([f64; 4], usize)>,
    perf: PerfTable,
}

impl OracleModel {
    fn nearest_background(&self, query: &[f64]) -> usize {
        let mut best = IDLE;
        let mut best_d = f64::INFINITY;
        for (profile, idx) in &self.backgrounds {
            let d: f64 = profile
                .iter()
                .zip(query)
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            if d < best_d {
                best_d = d;
                best = *idx;
            }
        }
        best
    }
}

impl InterferenceModel for OracleModel {
    fn predict(&self, features: &[f64; N_JOINT]) -> f64 {
        let bg = self.nearest_background(&features[4..8]);
        match self.response {
            OracleResponse::Runtime => self.perf.runtime(self.app_idx, bg),
            OracleResponse::Iops => self.perf.iops(self.app_idx, bg),
        }
    }

    fn kind(&self) -> ModelKind {
        // Reported as NLM for display purposes; the oracle is a
        // diagnostic stand-in, not a trained model.
        ModelKind::Nonlinear
    }

    fn n_terms(&self) -> usize {
        0
    }
}

/// Builds an oracle predictor over the testbed's measured statistics.
pub fn oracle_predictor(testbed: &Testbed) -> Predictor {
    let perf = &testbed.perf;
    let mut backgrounds: Vec<([f64; 4], usize)> = Vec::with_capacity(perf.n_apps() + 1);
    for (i, name) in perf.names.iter().enumerate() {
        let c = testbed.app_chars[name];
        backgrounds.push((c.as_array(), i));
    }
    backgrounds.push((Characteristics::idle().as_array(), IDLE));

    let mut predictor = Predictor::new();
    for (i, name) in perf.names.iter().enumerate() {
        let profile = AppProfile {
            name: name.clone(),
            solo: testbed.app_chars[name],
            solo_runtime: perf.solo_runtime(i),
            solo_iops: perf.solo_iops(i),
        };
        let runtime = Box::new(OracleModel {
            app_idx: i,
            response: OracleResponse::Runtime,
            backgrounds: backgrounds.clone(),
            perf: perf.clone(),
        });
        let iops = Box::new(OracleModel {
            app_idx: i,
            response: OracleResponse::Iops,
            backgrounds: backgrounds.clone(),
            perf: perf.clone(),
        });
        predictor.add_app(profile, AppModelSet { runtime, iops });
    }
    predictor
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::tests::shared;

    #[test]
    fn oracle_matches_pair_table_exactly() {
        let tb = shared();
        let p = oracle_predictor(tb);
        for (ai, a) in tb.perf.names.clone().iter().enumerate() {
            for (bi, b) in tb.perf.names.clone().iter().enumerate() {
                let pred = p.predict_runtime(a, &tb.app_chars[b.as_str()]);
                let meas = tb.perf.runtime(ai, bi);
                // The predictor clamps at the solo floor; benign pairs can
                // measure slightly *below* solo due to jitter, so allow a
                // modest tolerance.
                assert!(
                    (pred - meas).abs() / meas < 0.10,
                    "{a} | {b}: pred {pred} vs meas {meas}"
                );
            }
        }
    }

    #[test]
    fn oracle_idle_is_solo() {
        let tb = shared();
        let p = oracle_predictor(tb);
        let idle = Characteristics::idle();
        for (i, name) in tb.perf.names.clone().iter().enumerate() {
            let pred = p.predict_runtime(name, &idle);
            assert!((pred - tb.perf.solo_runtime(i)).abs() / tb.perf.solo_runtime(i) < 0.02);
        }
    }
}
