//! Seeded, deterministic fault injection for the simulator.
//!
//! A [`FaultPlan`] is generated *before* the run from a seed and a
//! [`FaultConfig`]: machine crash/recovery times drawn from exponential
//! MTTF/MTTR distributions, plus pure functions deciding per
//! `(task, attempt)` whether an execution fails at completion and whether
//! it straggles (runs at a reduced rate). Everything is derived from the
//! seed with a self-contained SplitMix64 generator — no RNG crate — so a
//! plan is bit-identical across platforms, builds, and runs, which is
//! what makes the `ext_faults` experiment reproducible.
//!
//! Fault model (documented in DESIGN.md §9):
//! * **Machine crash**: every task in flight on the machine loses all
//!   progress (fail-stop, restart-from-scratch) and is requeued through
//!   the scheduler, which re-places it interference-aware on the surviving
//!   machines. The machine's slots vanish from the free index until the
//!   paired recovery event.
//! * **Task failure**: decided per attempt; the execution runs to its
//!   (interference-scaled) end and then fails, wasting the full runtime —
//!   the conservative fail-at-completion convention.
//! * **Straggler**: an attempt may run at `1 / straggler_slowdown` of the
//!   pair rate (both work and I/O), modelling a degraded replica.
//! * A task is **abandoned** after `max_attempts` failed executions
//!   (crash evictions count as failed attempts).

/// Parameters of the fault model. All probabilities are per attempt.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Mean time to failure per machine, seconds (`0` disables crashes).
    pub machine_mttf_s: f64,
    /// Mean time to recovery once a machine is down, seconds.
    pub machine_mttr_s: f64,
    /// Probability that one task execution fails at completion.
    pub task_fail_prob: f64,
    /// Executions allowed per task before it is abandoned (>= 1).
    pub max_attempts: u32,
    /// Probability that one execution straggles.
    pub straggler_prob: f64,
    /// Rate divisor applied to a straggling execution (> 1).
    pub straggler_slowdown: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            machine_mttf_s: 1800.0,
            machine_mttr_s: 120.0,
            task_fail_prob: 0.05,
            max_attempts: 4,
            straggler_prob: 0.05,
            straggler_slowdown: 2.5,
        }
    }
}

/// One scheduled machine state transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineFaultEvent {
    /// Simulation time of the transition.
    pub time: f64,
    /// Machine index.
    pub machine: usize,
    /// `true` = recovery, `false` = crash.
    pub up: bool,
}

/// A pre-generated, seed-deterministic fault schedule.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Machine crash/recovery transitions, sorted by time.
    pub machine_events: Vec<MachineFaultEvent>,
    cfg: FaultConfig,
    seed: u64,
}

const TAG_FAIL: u64 = 0x7461_736b_6661_696c; // "taskfail"
const TAG_STRAGGLE: u64 = 0x7374_7261_6767_6c65; // "straggle"
const TAG_MACHINE: u64 = 0x6d61_6368_696e_6573; // "machines"

/// SplitMix64 output mix (Steele et al.) — the one-shot hash this module
/// builds every deterministic decision from.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A counter-mode SplitMix64 stream.
struct Stream {
    state: u64,
}

impl Stream {
    fn new(seed: u64) -> Self {
        Stream { state: mix(seed) }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(self.state)
    }

    /// Uniform in `[0, 1)`.
    fn next_u01(&mut self) -> f64 {
        u01(self.next_u64())
    }

    /// Exponential with the given mean.
    fn next_exp(&mut self, mean: f64) -> f64 {
        -mean * (1.0 - self.next_u01()).ln()
    }
}

fn u01(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

fn decision(seed: u64, tag: u64, task_id: u64, attempt: u32) -> f64 {
    u01(mix(seed
        ^ tag
        ^ mix(task_id)
        ^ mix(0x5bd1_e995 ^ u64::from(attempt))))
}

impl FaultPlan {
    /// The empty plan: no crashes, no failures, no stragglers. Running
    /// under it is bit-identical to running without a plan at all.
    pub fn none() -> FaultPlan {
        FaultPlan {
            machine_events: Vec::new(),
            cfg: FaultConfig {
                machine_mttf_s: 0.0,
                machine_mttr_s: 0.0,
                task_fail_prob: 0.0,
                max_attempts: u32::MAX,
                straggler_prob: 0.0,
                straggler_slowdown: 1.0,
            },
            seed: 0,
        }
    }

    /// Generates the plan for `n_machines` machines over `horizon_s`
    /// seconds. Per machine, an alternating up/down renewal process is
    /// drawn from `Exp(mttf)` / `Exp(mttr)`; the per-task decisions are
    /// derived lazily from the seed.
    ///
    /// # Panics
    /// Panics when `max_attempts` is zero, `machine_mttr_s` is not
    /// positive while crashes are enabled, or `straggler_slowdown < 1`.
    pub fn generate(cfg: FaultConfig, n_machines: usize, horizon_s: f64, seed: u64) -> FaultPlan {
        assert!(cfg.max_attempts >= 1, "max_attempts must be at least 1");
        assert!(
            cfg.straggler_slowdown >= 1.0,
            "straggler_slowdown must be >= 1"
        );
        let mut machine_events = Vec::new();
        if cfg.machine_mttf_s > 0.0 {
            assert!(
                cfg.machine_mttr_s > 0.0,
                "machine_mttr_s must be positive when crashes are enabled"
            );
            for machine in 0..n_machines {
                let mut s = Stream::new(seed ^ TAG_MACHINE ^ mix(machine as u64));
                let mut t = 0.0;
                loop {
                    t += s.next_exp(cfg.machine_mttf_s);
                    if t > horizon_s {
                        break;
                    }
                    machine_events.push(MachineFaultEvent {
                        time: t,
                        machine,
                        up: false,
                    });
                    t += s.next_exp(cfg.machine_mttr_s);
                    if t > horizon_s {
                        break; // stays down past the horizon
                    }
                    machine_events.push(MachineFaultEvent {
                        time: t,
                        machine,
                        up: true,
                    });
                }
            }
            machine_events
                .sort_by(|a, b| a.time.total_cmp(&b.time).then(a.machine.cmp(&b.machine)));
        }
        FaultPlan {
            machine_events,
            cfg,
            seed,
        }
    }

    /// The configuration the plan was generated from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Whether the plan can never perturb a run.
    pub fn is_empty(&self) -> bool {
        self.machine_events.is_empty()
            && self.cfg.task_fail_prob <= 0.0
            && self.cfg.straggler_prob <= 0.0
    }

    /// Whether execution `attempt` (0-based) of `task_id` fails at
    /// completion. Pure in `(seed, task_id, attempt)`.
    pub fn attempt_fails(&self, task_id: u64, attempt: u32) -> bool {
        self.cfg.task_fail_prob > 0.0
            && decision(self.seed, TAG_FAIL, task_id, attempt) < self.cfg.task_fail_prob
    }

    /// The rate divisor for execution `attempt` of `task_id` (1.0 =
    /// nominal). Pure in `(seed, task_id, attempt)`.
    pub fn straggler_slowdown(&self, task_id: u64, attempt: u32) -> f64 {
        if self.cfg.straggler_prob > 0.0
            && decision(self.seed, TAG_STRAGGLE, task_id, attempt) < self.cfg.straggler_prob
        {
            self.cfg.straggler_slowdown
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = FaultConfig::default();
        let a = FaultPlan::generate(cfg, 16, 7200.0, 42);
        let b = FaultPlan::generate(cfg, 16, 7200.0, 42);
        assert_eq!(a.machine_events, b.machine_events);
        assert!(!a.machine_events.is_empty(), "16 machines x 4 MTTF spans");
        for (x, y) in a.machine_events.iter().zip(a.machine_events.iter().skip(1)) {
            assert!(x.time <= y.time, "events must be time-sorted");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = FaultConfig::default();
        let a = FaultPlan::generate(cfg, 16, 7200.0, 1);
        let b = FaultPlan::generate(cfg, 16, 7200.0, 2);
        assert_ne!(a.machine_events, b.machine_events);
    }

    #[test]
    fn crash_and_recovery_alternate_per_machine() {
        let plan = FaultPlan::generate(FaultConfig::default(), 8, 36_000.0, 7);
        for m in 0..8 {
            let mut expect_up = false;
            for e in plan.machine_events.iter().filter(|e| e.machine == m) {
                assert_eq!(e.up, expect_up, "machine {m} transitions must alternate");
                expect_up = !expect_up;
            }
        }
    }

    #[test]
    fn task_decisions_are_pure_and_attempt_dependent() {
        let plan = FaultPlan::generate(
            FaultConfig {
                task_fail_prob: 0.5,
                ..FaultConfig::default()
            },
            4,
            100.0,
            9,
        );
        for task in 0..50u64 {
            for attempt in 0..3u32 {
                assert_eq!(
                    plan.attempt_fails(task, attempt),
                    plan.attempt_fails(task, attempt)
                );
            }
        }
        // With p = 0.5 over 200 decisions, both outcomes must occur.
        let fails = (0..100u64)
            .flat_map(|t| (0..2u32).map(move |a| (t, a)))
            .filter(|&(t, a)| plan.attempt_fails(t, a))
            .count();
        assert!(fails > 20 && fails < 180, "fails = {fails}");
    }

    #[test]
    fn empty_plan_never_perturbs() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(plan.machine_events.is_empty());
        for task in 0..100u64 {
            assert!(!plan.attempt_fails(task, 0));
            assert_eq!(plan.straggler_slowdown(task, 0), 1.0);
        }
    }

    #[test]
    fn zero_mttf_disables_crashes() {
        let plan = FaultPlan::generate(
            FaultConfig {
                machine_mttf_s: 0.0,
                machine_mttr_s: 0.0,
                ..FaultConfig::default()
            },
            64,
            1e6,
            3,
        );
        assert!(plan.machine_events.is_empty());
    }

    #[test]
    fn stragglers_use_configured_slowdown() {
        let plan = FaultPlan::generate(
            FaultConfig {
                straggler_prob: 1.0,
                straggler_slowdown: 3.0,
                ..FaultConfig::default()
            },
            4,
            100.0,
            11,
        );
        assert_eq!(plan.straggler_slowdown(1, 0), 3.0);
    }
}
