//! The event kernel's priority queue: a total order over `(time, seq)`
//! where the sequence number makes simultaneous events pop in push order
//! — which is what keeps the simulation bit-reproducible across runs and
//! refactors.
//!
//! Two interchangeable backends implement [`KernelQueue`]:
//!
//! * [`TimingWheel`] (the default) — a calendar queue over arena-allocated
//!   events in a flat SoA layout. Simulation time is monotone and
//!   completions cluster densely, so pushes and pops are O(1) amortized:
//!   events land in one of [`N_BUCKETS`] equal-width buckets spanning the
//!   current epoch, each bucket is sorted once when the drain cursor
//!   reaches it, and far-future events wait in an overflow list until the
//!   epoch rolls over and a new calendar is laid out over their span.
//! * [`HeapQueue`] — the reference `BinaryHeap` kernel, retained as the
//!   equivalence oracle (`QueueBackend::BinaryHeap`) and exercised by the
//!   wheel-vs-heap proptest below and the golden bit-identity matrix.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use tracon_core::VmRef;

/// Tolerance under which two event timestamps count as simultaneous.
/// Shared by the queue's coincidence-group extraction and the dispatch
/// gate: simultaneous events must all be processed before the scheduler
/// runs, or a batch scheduler would see its window one task at a time.
pub const COINCIDENCE_EPS: f64 = 1e-12;

/// What happens when an event fires.
#[derive(Debug, Clone, Copy)]
pub(crate) enum EventKind {
    /// Task `trace[i]` arrives.
    Arrival(usize),
    /// The task on `vm` finishes — valid only if the slot's version still
    /// matches (a neighbour change reschedules completion and bumps the
    /// version, turning the old event stale).
    Completion { vm: VmRef, version: u64 },
    /// A [`FaultPlan`](crate::faults::FaultPlan) machine transition:
    /// crash (`up == false`, evicting and requeueing every resident) or
    /// recovery (`up == true`, relisting the machine's slots).
    MachineFault { machine: usize, up: bool },
}

/// A scheduled simulation event.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    pub time: f64,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for the max-heap: earliest time (then lowest seq)
        // first. Event times are finite and non-negative, so total_cmp
        // agrees with the partial order while keeping Ord's contract
        // honest for any bit pattern.
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

/// A kernel event queue: a totally ordered `(time, seq)` schedule with
/// O(1) peeking. The simulation main loop is generic over this trait so
/// the timing wheel and the reference heap are drop-in interchangeable
/// (see [`QueueBackend`](super::QueueBackend)).
pub(crate) trait KernelQueue {
    /// Creates an empty queue sized for roughly `n` events.
    fn with_capacity(n: usize) -> Self
    where
        Self: Sized;

    /// Schedules an event; later pushes at the same time pop later.
    fn push(&mut self, time: f64, kind: EventKind);

    /// Pops the earliest event.
    fn pop(&mut self) -> Option<Event>;

    /// Time of the earliest pending event, if any. `None` doubles as the
    /// emptiness probe: for batch schedulers it signals the arrival trace
    /// is exhausted, so the queue must drain.
    fn next_time(&self) -> Option<f64>;

    /// Pops the maximal coincidence group — the head event plus every
    /// successor chained within [`COINCIDENCE_EPS`] of the previously
    /// popped timestamp — appending it to `out` in pop order. One call
    /// replaces the old peek-per-event `has_event_at` probing in the main
    /// loop. Returns `false` when the queue is empty.
    fn pop_coincident_into(&mut self, out: &mut Vec<Event>) -> bool {
        let Some(first) = self.pop() else {
            return false;
        };
        let mut last = first.time;
        out.push(first);
        while let Some(t) = self.next_time() {
            if (t - last).abs() < COINCIDENCE_EPS {
                last = t;
                out.push(self.pop().expect("peeked a pending event"));
            } else {
                break;
            }
        }
        true
    }
}

/// The reference event queue: a max-heap of boxed-node [`Event`]s plus
/// the monotone sequence counter, so every push gets the next
/// tie-breaking rank automatically.
pub(crate) struct HeapQueue {
    heap: BinaryHeap<Event>,
    seq: u64,
}

impl KernelQueue for HeapQueue {
    fn with_capacity(n: usize) -> Self {
        HeapQueue {
            heap: BinaryHeap::with_capacity(n),
            seq: 0,
        }
    }

    fn push(&mut self, time: f64, kind: EventKind) {
        self.heap.push(Event {
            time,
            seq: self.seq,
            kind,
        });
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    fn next_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }
}

/// Number of calendar buckets per epoch. Large enough that a bucket of a
/// full-fidelity sweep holds a few hundred events (one cheap sort each),
/// small enough that scanning an epoch's empty buckets is negligible.
const N_BUCKETS: usize = 512;

/// Floor on the bucket width so a zero-span epoch (every far event at one
/// timestamp) still maps into the calendar.
const MIN_BUCKET_WIDTH: f64 = 1e-9;

/// Rollovers with at most this many pending far events skip the calendar
/// and sort directly into the drain window: below this size the binary
/// insert's memmove is cheaper than walking a sparse epoch's buckets.
const RUN_DIRECT_MAX: usize = 128;

/// The timing-wheel event queue (default backend).
///
/// Events live in an append-only arena in SoA layout — parallel `times`
/// and `kinds` arrays indexed by a `u32` handle. The handle doubles as
/// the event's sequence number, so tie-breaking by push order is just an
/// integer compare on the index and events are never moved or boxed.
///
/// Handles flow through three tiers, split by two time boundaries:
///
/// ```text
///   (-inf, drain_bound)      [drain_bound, far_bound)     [far_bound, inf)
///  ┌──────────────────┐     ┌────┬────┬─ ... ─┬────┐     ┌──────────────┐
///  │ run (sorted vec) │ ◄── │        buckets       │ ◄── │ far overflow │
///  └──────────────────┘     └────┴────┴─ ... ─┴────┘     └──────────────┘
///        pop cursor          sorted on first touch         rebuilt into a
///                                                          new epoch when
///                                                          buckets drain
/// ```
///
/// * **run** — the sorted drain window; `run[cursor]` is the queue head,
///   so peek and pop are O(1). Late pushes that land inside the window
///   (a completion rescheduled at the current timestamp) binary-insert
///   into the pending tail.
/// * **buckets** — `N_BUCKETS` equal-width slots covering the current
///   epoch `[origin, far_bound)`. A push is one index computation and a
///   `Vec::push`; a bucket is sorted by `(time, handle)` exactly once,
///   when the cursor reaches it.
/// * **far** — unsorted overflow for events beyond the epoch. When every
///   bucket has drained, the epoch rolls over: a fresh calendar is laid
///   out across the far events' span and they are redistributed.
///
/// Every boundary test is an exact FP comparison and the bucket mapping
/// is monotone in time, so the pop order is the *identical* `(time, seq)`
/// total order the reference heap produces — bit-for-bit, as gated by the
/// proptest below and the golden-engine matrix.
pub(crate) struct TimingWheel {
    /// Arena (SoA): event time per handle.
    times: Vec<f64>,
    /// Arena (SoA): event payload per handle.
    kinds: Vec<EventKind>,
    /// Sorted drain window: `(time, handle)` pairs with
    /// `time < drain_bound`; `run[cursor..]` is pending, earliest first.
    /// Times are stored inline so the head peek, the binary insert's
    /// probes, and the drain sort all touch contiguous memory instead of
    /// hopping through the arena.
    run: Vec<(f64, u32)>,
    cursor: usize,
    /// Exclusive upper time bound of the drain window.
    drain_bound: f64,
    /// Epoch calendar origin (inclusive lower bound of bucket 0).
    origin: f64,
    /// Epoch bucket width (always positive).
    width: f64,
    buckets: Vec<Vec<u32>>,
    /// Occupancy bitmap over `buckets` (bit set ⇔ bucket non-empty), so
    /// sparse epochs skip to the next populated bucket in a few word
    /// scans instead of touching up to `N_BUCKETS` vector headers.
    occupied: [u64; N_BUCKETS / 64],
    /// Next bucket the cursor will drain; earlier buckets are spent.
    bucket_pos: usize,
    /// Total handles currently sitting in buckets.
    n_bucketed: usize,
    /// Unsorted overflow: handles with `time >= far_bound`.
    far: Vec<u32>,
    /// Exclusive upper time bound of the epoch calendar.
    far_bound: f64,
}

impl TimingWheel {
    fn event(&self, h: u32) -> Event {
        Event {
            time: self.times[h as usize],
            seq: h as u64,
            kind: self.kinds[h as usize],
        }
    }

    /// Maps an epoch-resident time (`drain_bound <= t < far_bound`) to
    /// its bucket. Monotone in `t`; the clamp absorbs FP fuzz at the
    /// drain boundary so a spent bucket can never receive a new event.
    fn bucket_index(&self, t: f64) -> usize {
        let raw = ((t - self.origin) / self.width).floor();
        let idx = if raw >= 0.0 { raw as usize } else { 0 };
        idx.clamp(self.bucket_pos, N_BUCKETS - 1)
    }

    /// Restores the head invariant: whenever any event is pending,
    /// `run[cursor]` is the earliest one. Called after every mutation, so
    /// `next_time` stays a plain O(1) array read.
    fn settle(&mut self) {
        while self.cursor >= self.run.len() {
            self.run.clear();
            self.cursor = 0;
            if self.n_bucketed > 0 {
                // Jump to the next populated bucket via the bitmap.
                let mut w = self.bucket_pos / 64;
                let mut word = self.occupied[w] & (!0u64 << (self.bucket_pos % 64));
                while word == 0 {
                    w += 1;
                    word = self.occupied[w];
                }
                let b = w * 64 + word.trailing_zeros() as usize;
                self.occupied[w] &= !(1u64 << (b % 64));
                let times = &self.times;
                let bucket = &mut self.buckets[b];
                self.n_bucketed -= bucket.len();
                self.run
                    .extend(bucket.drain(..).map(|h| (times[h as usize], h)));
                self.run
                    .sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                self.bucket_pos = b + 1;
                self.drain_bound = if self.bucket_pos == N_BUCKETS {
                    self.far_bound
                } else {
                    self.origin + self.bucket_pos as f64 * self.width
                };
            } else if !self.far.is_empty() {
                // Epoch rollover: lay a fresh calendar over the far
                // events' span and redistribute them.
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for &h in &self.far {
                    let t = self.times[h as usize];
                    lo = lo.min(t);
                    hi = hi.max(t);
                }
                if self.far.len() <= RUN_DIRECT_MAX {
                    // Sparse rollover — the simulator's long drain tail,
                    // where only the in-flight completions remain. A
                    // calendar would scatter a handful of events over
                    // hundreds of buckets; sort them straight into the
                    // run instead and make the whole span the drain
                    // window (no buckets: `bucket_pos == N_BUCKETS` and
                    // `drain_bound == far_bound` route every new push to
                    // the run-insert or far tiers).
                    let times = &self.times;
                    self.run
                        .extend(self.far.drain(..).map(|h| (times[h as usize], h)));
                    self.run
                        .sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                    // `next_up` keeps the invariant strict: the event at
                    // `hi` itself sits in the run, while a new push at
                    // exactly `hi` (higher seq) lands in `far` and pops
                    // in a later rollover — the correct total order.
                    self.drain_bound = hi.next_up();
                    self.far_bound = self.drain_bound;
                    self.bucket_pos = N_BUCKETS;
                    continue;
                }
                self.origin = lo;
                // `hi` maps to the last bucket, so the whole span fits.
                self.width = ((hi - lo) / (N_BUCKETS - 1) as f64).max(MIN_BUCKET_WIDTH);
                self.far_bound = self.origin + N_BUCKETS as f64 * self.width;
                self.bucket_pos = 0;
                self.drain_bound = self.origin;
                let far = std::mem::take(&mut self.far);
                self.n_bucketed += far.len();
                for h in far {
                    let b = self.bucket_index(self.times[h as usize]);
                    self.buckets[b].push(h);
                    self.occupied[b / 64] |= 1u64 << (b % 64);
                }
            } else {
                // Fully drained: reset to the pristine state, where the
                // next pushes gather in `far` and the first pop lays out
                // a calendar over whatever span they cover.
                self.drain_bound = f64::NEG_INFINITY;
                self.far_bound = f64::NEG_INFINITY;
                self.bucket_pos = N_BUCKETS;
                return;
            }
        }
    }
}

impl KernelQueue for TimingWheel {
    fn with_capacity(n: usize) -> Self {
        TimingWheel {
            times: Vec::with_capacity(n),
            kinds: Vec::with_capacity(n),
            run: Vec::new(),
            cursor: 0,
            drain_bound: f64::NEG_INFINITY,
            origin: 0.0,
            width: MIN_BUCKET_WIDTH,
            buckets: vec![Vec::new(); N_BUCKETS],
            occupied: [0; N_BUCKETS / 64],
            bucket_pos: N_BUCKETS,
            n_bucketed: 0,
            far: Vec::with_capacity(n),
            far_bound: f64::NEG_INFINITY,
        }
    }

    fn push(&mut self, time: f64, kind: EventKind) {
        assert!(
            self.times.len() < u32::MAX as usize,
            "event arena exhausted its u32 handle space"
        );
        let h = self.times.len() as u32;
        self.times.push(time);
        self.kinds.push(kind);
        if time < self.drain_bound {
            // Lands inside the drain window: binary-insert into the
            // pending tail. The new handle carries the highest seq, so it
            // sorts after every equal-time entry already there.
            let pos = self.cursor
                + self.run[self.cursor..].partition_point(|&(t, _)| t.total_cmp(&time).is_le());
            self.run.insert(pos, (time, h));
        } else if time < self.far_bound {
            let b = self.bucket_index(time);
            self.buckets[b].push(h);
            self.occupied[b / 64] |= 1u64 << (b % 64);
            self.n_bucketed += 1;
        } else {
            self.far.push(h);
        }
        self.settle();
    }

    fn pop(&mut self) -> Option<Event> {
        let &(_, h) = self.run.get(self.cursor)?;
        self.cursor += 1;
        self.settle();
        Some(self.event(h))
    }

    fn next_time(&self) -> Option<f64> {
        self.run.get(self.cursor).map(|&(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn drain_ids<Q: KernelQueue>(q: &mut Q) -> Vec<usize> {
        std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Arrival(i) => i,
                _ => unreachable!(),
            })
            .collect()
    }

    fn pops_in_time_then_seq_order<Q: KernelQueue>() {
        let mut q = Q::with_capacity(4);
        q.push(2.0, EventKind::Arrival(0));
        q.push(1.0, EventKind::Arrival(1));
        q.push(1.0, EventKind::Arrival(2));
        q.push(0.5, EventKind::Arrival(3));
        assert_eq!(drain_ids(&mut q), vec![3, 1, 2, 0]);
    }

    #[test]
    fn heap_pops_in_time_then_seq_order() {
        pops_in_time_then_seq_order::<HeapQueue>();
    }

    #[test]
    fn wheel_pops_in_time_then_seq_order() {
        pops_in_time_then_seq_order::<TimingWheel>();
    }

    #[test]
    fn total_cmp_matches_partial_cmp_on_sim_times() {
        // The swap from partial_cmp to total_cmp is behaviour preserving
        // for the times a simulation produces (finite, >= 0).
        for (a, b) in [(0.0f64, 1.0), (1.5, 1.5), (3.25, 0.125), (1e-9, 2e-9)] {
            assert_eq!(a.total_cmp(&b), a.partial_cmp(&b).unwrap());
        }
    }

    fn next_time_detects_coincidence<Q: KernelQueue>() {
        let mut q = Q::with_capacity(2);
        q.push(1.0, EventKind::Arrival(0));
        let at = |q: &Q, now: f64| {
            q.next_time()
                .is_some_and(|t| (t - now).abs() < COINCIDENCE_EPS)
        };
        assert!(at(&q, 1.0));
        assert!(!at(&q, 1.1));
        q.pop();
        assert!(!at(&q, 1.0));
        assert!(q.next_time().is_none());
    }

    #[test]
    fn heap_next_time_detects_coincidence() {
        next_time_detects_coincidence::<HeapQueue>();
    }

    #[test]
    fn wheel_next_time_detects_coincidence() {
        next_time_detects_coincidence::<TimingWheel>();
    }

    fn coincident_group_extraction<Q: KernelQueue>() {
        let mut q = Q::with_capacity(5);
        q.push(1.0, EventKind::Arrival(0));
        q.push(1.0, EventKind::Arrival(1));
        q.push(1.0 + 0.5e-12, EventKind::Arrival(2)); // chained
        q.push(2.0, EventKind::Arrival(3)); // next group
        let mut group = Vec::new();
        assert!(q.pop_coincident_into(&mut group));
        let ids: Vec<u64> = group.iter().map(|e| e.seq).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        group.clear();
        assert!(q.pop_coincident_into(&mut group));
        assert_eq!(group.len(), 1);
        assert_eq!(group[0].seq, 3);
        assert!(!q.pop_coincident_into(&mut group));
    }

    #[test]
    fn heap_coincident_group_extraction() {
        coincident_group_extraction::<HeapQueue>();
    }

    #[test]
    fn wheel_coincident_group_extraction() {
        coincident_group_extraction::<TimingWheel>();
    }

    #[test]
    fn wheel_survives_epoch_rollovers_and_window_inserts() {
        // Far-future outliers force epoch rebuilds; a push below the
        // drain bound after the first pop exercises the binary insert.
        let mut q = TimingWheel::with_capacity(8);
        let mut h = HeapQueue::with_capacity(8);
        for (t, i) in [(10.0, 0), (1e9, 1), (10.0, 2), (2e9, 3)] {
            q.push(t, EventKind::Arrival(i));
            h.push(t, EventKind::Arrival(i));
        }
        assert_eq!(q.pop().unwrap().seq, h.pop().unwrap().seq);
        // Inside the drain window laid out over the t = 10 events.
        q.push(10.0, EventKind::Arrival(4));
        h.push(10.0, EventKind::Arrival(4));
        assert_eq!(drain_ids(&mut q), drain_ids(&mut h));
        // A drained wheel resets and accepts a fresh schedule.
        q.push(5.0, EventKind::Arrival(9));
        assert_eq!(q.next_time(), Some(5.0));
    }

    proptest! {
        /// The tentpole's safety net: on arbitrary interleaved streams of
        /// pushes and pops — dense same-timestamp bursts, fine-grained
        /// spreads, and far-future outliers — the wheel must produce
        /// exactly the heap's `(time, seq)` total order, bit for bit.
        #[test]
        fn wheel_matches_heap_on_random_streams(
            ops in proptest::collection::vec(
                (any::<u8>(), 0.0f64..1000.0, any::<bool>()),
                1..120,
            )
        ) {
            let mut wheel = TimingWheel::with_capacity(ops.len());
            let mut heap = HeapQueue::with_capacity(ops.len());
            let key = |e: Event| (e.time.to_bits(), e.seq);
            for (i, &(sel, t, pop_now)) in ops.iter().enumerate() {
                let time = match sel % 4 {
                    0 => (t * 0.016).floor(),  // dense bursts on few values
                    1 => t,                    // fine-grained spread
                    2 => 1e9 + t * 1e6,        // far-future outliers
                    _ => 250.0,                // exact same-timestamp pile
                };
                wheel.push(time, EventKind::Arrival(i));
                heap.push(time, EventKind::Arrival(i));
                if pop_now {
                    prop_assert_eq!(wheel.pop().map(key), heap.pop().map(key));
                }
                prop_assert_eq!(
                    wheel.next_time().map(f64::to_bits),
                    heap.next_time().map(f64::to_bits)
                );
            }
            loop {
                let (a, b) = (wheel.pop().map(key), heap.pop().map(key));
                let done = a.is_none();
                prop_assert_eq!(a, b);
                if done {
                    break;
                }
            }
        }
    }
}
