//! The event kernel's priority queue: a max-heap of [`Event`]s ordered
//! earliest-first by `(time, seq)`. The sequence number makes the order
//! total — simultaneous events pop in push order — which is what keeps
//! the simulation bit-reproducible across runs and refactors.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use tracon_core::VmRef;

/// What happens when an event fires.
#[derive(Debug, Clone, Copy)]
pub(crate) enum EventKind {
    /// Task `trace[i]` arrives.
    Arrival(usize),
    /// The task on `vm` finishes — valid only if the slot's version still
    /// matches (a neighbour change reschedules completion and bumps the
    /// version, turning the old event stale).
    Completion { vm: VmRef, version: u64 },
    /// A [`FaultPlan`](crate::faults::FaultPlan) machine transition:
    /// crash (`up == false`, evicting and requeueing every resident) or
    /// recovery (`up == true`, relisting the machine's slots).
    MachineFault { machine: usize, up: bool },
}

/// A scheduled simulation event.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    pub time: f64,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for the max-heap: earliest time (then lowest seq)
        // first. Event times are finite and non-negative, so total_cmp
        // agrees with the partial order while keeping Ord's contract
        // honest for any bit pattern.
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

/// The event queue: owns the heap and the monotone sequence counter, so
/// every push gets the next tie-breaking rank automatically.
pub(crate) struct EventQueue {
    heap: BinaryHeap<Event>,
    seq: u64,
}

impl EventQueue {
    pub fn with_capacity(n: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(n),
            seq: 0,
        }
    }

    /// Schedules an event; later pushes at the same time pop later.
    pub fn push(&mut self, time: f64, kind: EventKind) {
        self.heap.push(Event {
            time,
            seq: self.seq,
            kind,
        });
        self.seq += 1;
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Whether no further events are scheduled (for batch schedulers:
    /// the arrival trace is exhausted, so the queue must drain).
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether the next event is simultaneous with `now` (within the
    /// kernel's coincidence tolerance). Simultaneous events must all be
    /// processed before the scheduler runs, or a batch scheduler would
    /// see its window one task at a time.
    pub fn has_event_at(&self, now: f64) -> bool {
        self.heap
            .peek()
            .map(|e| (e.time - now).abs() < 1e-12)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = EventQueue::with_capacity(4);
        q.push(2.0, EventKind::Arrival(0));
        q.push(1.0, EventKind::Arrival(1));
        q.push(1.0, EventKind::Arrival(2));
        q.push(0.5, EventKind::Arrival(3));
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Arrival(i) => i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![3, 1, 2, 0]);
    }

    #[test]
    fn total_cmp_matches_partial_cmp_on_sim_times() {
        // The satellite swap from partial_cmp to total_cmp is behaviour
        // preserving for the times a simulation produces (finite, >= 0).
        for (a, b) in [(0.0f64, 1.0), (1.5, 1.5), (3.25, 0.125), (1e-9, 2e-9)] {
            assert_eq!(a.total_cmp(&b), a.partial_cmp(&b).unwrap());
        }
    }

    #[test]
    fn has_event_at_detects_coincidence() {
        let mut q = EventQueue::with_capacity(2);
        q.push(1.0, EventKind::Arrival(0));
        assert!(q.has_event_at(1.0));
        assert!(!q.has_event_at(1.1));
        q.pop();
        assert!(!q.has_event_at(1.0));
        assert!(q.is_empty());
    }
}
