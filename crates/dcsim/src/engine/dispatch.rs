//! When and how the scheduler is invoked: the batch-window trigger logic
//! and the queue-window drain that limits what batch schedulers see.

use super::event::COINCIDENCE_EPS;
use std::collections::VecDeque;
use tracon_core::{Assignment, ClusterState, Scheduler, ScoringPolicy, Task};

/// Encapsulates the dispatch-trigger policy around a scheduler's batch
/// window (`None` for the online schedulers, which dispatch eagerly).
///
/// Batch schedulers wait until their queue window fills (the paper: "the
/// scheduling process takes place when the queue that holds the incoming
/// tasks is full") — the waiting both widens the pairing choice and lets
/// free slots accumulate so pairs can land together on one machine. A
/// batch scheduler also fires when the arrival trace is exhausted
/// (drain), when an entirely idle machine is available (placing there is
/// never regrettable), or when at least two slots are free (a pairing
/// opportunity already exists, so waiting for more queue only burns
/// utilization — measurably ~5% of throughput on benign workloads). A
/// single free slot with a short queue waits for either more tasks
/// (choice) or another slot (pairing).
///
/// The gate observes the event kernel only through `next_event_time` —
/// the `(time of the earliest pending event)` peek — so it works
/// unchanged over every [`KernelQueue`](super::event::KernelQueue)
/// backend and over the main loop's buffered coincidence groups.
pub(crate) struct DispatchPolicy {
    window: Option<usize>,
}

impl DispatchPolicy {
    pub fn new(window: Option<usize>) -> Self {
        DispatchPolicy { window }
    }

    /// Whether the batch window is satisfied (always true for online
    /// schedulers). `next_event_time == None` means the arrival trace is
    /// exhausted and nothing is running, so the queue must drain.
    fn window_ready(
        &self,
        queue_len: usize,
        next_event_time: Option<f64>,
        cluster: &ClusterState,
    ) -> bool {
        match self.window {
            Some(w) => {
                queue_len >= w
                    || next_event_time.is_none()
                    || cluster.has_idle_machine()
                    || cluster.n_free() >= 2
            }
            None => true,
        }
    }

    /// The full dispatch gate. Simultaneous events (a static batch
    /// arriving at t = 0, or a machine's two slots completing together)
    /// must all be processed before the scheduler runs, or a batch
    /// scheduler would see its window one task at a time — hence the
    /// [`COINCIDENCE_EPS`] hold-off when the next event is at `now`.
    pub fn should_dispatch(
        &self,
        schedule_needed: bool,
        now: f64,
        next_event_time: Option<f64>,
        queue: &VecDeque<Task>,
        cluster: &ClusterState,
    ) -> bool {
        schedule_needed
            && self.window_ready(queue.len(), next_event_time, cluster)
            && !next_event_time.is_some_and(|t| (t - now).abs() < COINCIDENCE_EPS)
            && !queue.is_empty()
            && cluster.n_free() > 0
    }

    /// Runs the scheduler over (at most) its queue window. Window tasks
    /// the scheduler leaves unassigned return to the front of the queue
    /// in their original order.
    pub fn dispatch(
        &self,
        scheduler: &mut dyn Scheduler,
        queue: &mut VecDeque<Task>,
        cluster: &mut ClusterState,
        scoring: &ScoringPolicy<'_>,
    ) -> Vec<Assignment> {
        match self.window {
            Some(window) if queue.len() > window => {
                let mut head: VecDeque<Task> = queue.drain(..window).collect();
                let out = scheduler.schedule(&mut head, cluster, scoring);
                while let Some(t) = head.pop_back() {
                    queue.push_front(t);
                }
                out
            }
            _ => scheduler.schedule(queue, cluster, scoring),
        }
    }
}
