//! Per-slot running-task state and the remaining-work rescaling rule
//! (paper Section 4.2): when a task's neighbour changes, accrued progress
//! is banked at the old rate and the remainder continues at the new
//! pair rate, with a fresh completion event superseding the stale one.

use super::event::{EventKind, KernelQueue};
use crate::perf::{PerfTable, IDLE};
use tracon_core::{MachineClass, VmRef};

/// Machine-class context for the event kernel of a heterogeneous
/// cluster: the class table, each machine's class index, and each
/// application's offered link load in MB/s (perf-table indexed).
#[derive(Debug, Clone)]
pub(crate) struct NetCtx {
    pub classes: Vec<MachineClass>,
    pub assignment: Vec<u16>,
    pub demand: Vec<f64>,
}

/// A task in flight on a VM slot.
#[derive(Debug, Clone)]
pub(crate) struct Running {
    pub app_idx: usize,
    /// Neighbour app index at placement time (IDLE if the sibling slot was
    /// free) — the state the prediction was made against.
    pub neighbor_at_start: usize,
    pub start_time: f64,
    /// Completed fraction of the task's work.
    pub progress: f64,
    /// Work fraction per second under the current neighbour.
    pub rate: f64,
    /// Served I/O rate under the current neighbour.
    pub iops_rate: f64,
    /// Accumulated I/O operations.
    pub io_ops: f64,
    pub last_update: f64,
    pub version: u64,
    /// Straggler rate divisor for this execution (1.0 = nominal); applied
    /// to both work and I/O rates on every refresh.
    pub slowdown: f64,
}

/// A validated task completion, with the realized measurements the
/// observers consume.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Completed {
    pub app_idx: usize,
    pub neighbor_at_start: usize,
    pub runtime: f64,
    pub avg_iops: f64,
}

/// The slot table: owns every [`Running`] entry and applies the
/// progress-rescaling rule whenever a slot's neighbourhood changes.
pub(crate) struct SlotState<'p> {
    slots: Vec<Option<Running>>,
    slots_per_machine: usize,
    perf: &'p PerfTable,
    /// Last version used per slot. Versions are monotone per *slot*, not
    /// per occupancy: a new task starts past every version its
    /// predecessor used, so a completion event left over from a previous
    /// occupant can never validate against the current one.
    base_version: Vec<u64>,
    /// Machine-class context; `None` on a homogeneous cluster (the
    /// legacy, bit-identical path).
    net: Option<NetCtx>,
}

impl<'p> SlotState<'p> {
    pub fn new(n_machines: usize, slots_per_machine: usize, perf: &'p PerfTable) -> Self {
        SlotState {
            slots: vec![None; n_machines * slots_per_machine],
            slots_per_machine,
            perf,
            base_version: vec![0; n_machines * slots_per_machine],
            net: None,
        }
    }

    /// Attaches machine-class context: refreshes on non-reference-class
    /// machines additionally divide the work rate by the class slowdown
    /// (solo factor x M/M/1 link contention) and scale the I/O rate by
    /// `iops_factor / contention`.
    pub fn with_net(mut self, net: NetCtx) -> Self {
        self.net = Some(net);
        self
    }

    /// The `(runtime divisor, IOPS multiplier)` the machine's class
    /// imposes given its residents' current total link load, or `None`
    /// when the kernel is class-oblivious or the class is the reference
    /// class — the gate that keeps legacy scenarios bit-identical.
    fn class_adjust(&self, machine: usize) -> Option<(f64, f64)> {
        let net = self.net.as_ref()?;
        let class = &net.classes[net.assignment[machine] as usize];
        if class.is_reference() {
            return None;
        }
        let mut demand = 0.0;
        for s in 0..self.slots_per_machine {
            if let Some(r) = &self.slots[machine * self.slots_per_machine + s] {
                demand += net.demand[r.app_idx];
            }
        }
        Some((
            class.slowdown(demand),
            class.iops_factor / class.link_contention(demand),
        ))
    }

    fn index(&self, vm: VmRef) -> usize {
        vm.machine * self.slots_per_machine + vm.slot
    }

    /// The app index of `vm`'s most I/O-intensive sibling, or [`IDLE`].
    /// With two slots per machine there is at most one neighbour; with
    /// more, the most I/O-intensive one dominates (documented
    /// approximation for >2-slot extensions).
    pub fn neighbor_app(&self, vm: VmRef) -> usize {
        let mut best = IDLE;
        let mut best_iops = -1.0f64;
        for s in 0..self.slots_per_machine {
            if s == vm.slot {
                continue;
            }
            if let Some(r) = &self.slots[vm.machine * self.slots_per_machine + s] {
                let io = self.perf.solo_iops(r.app_idx);
                if io > best_iops {
                    best_iops = io;
                    best = r.app_idx;
                }
            }
        }
        best
    }

    /// Whether a slot currently hosts a task.
    pub fn is_occupied(&self, vm: VmRef) -> bool {
        self.slots[self.index(vm)].is_some()
    }

    /// Starts a task on a free slot with the given straggler `slowdown`
    /// (1.0 = nominal). The rate fields are placeholders until the caller
    /// refreshes the slot.
    pub fn place(
        &mut self,
        vm: VmRef,
        app_idx: usize,
        neighbor_at_start: usize,
        now: f64,
        slowdown: f64,
    ) {
        let idx = self.index(vm);
        debug_assert!(
            self.slots[idx].is_none(),
            "scheduler placed onto occupied slot"
        );
        self.slots[idx] = Some(Running {
            app_idx,
            neighbor_at_start,
            start_time: now,
            progress: 0.0,
            rate: 1.0, // placeholder; refresh sets it
            iops_rate: 0.0,
            io_ops: 0.0,
            last_update: now,
            version: self.base_version[idx],
            slowdown,
        });
    }

    /// Re-rates a slot against its current neighbour: banks the progress
    /// and I/O accrued at the old rate, switches to the new pair rate,
    /// bumps the version (invalidating the outstanding completion event),
    /// and schedules a new completion at the rescaled ETA. No-op on an
    /// empty slot.
    pub fn refresh<Q: KernelQueue>(&mut self, vm: VmRef, now: f64, events: &mut Q) {
        let nb = self.neighbor_app(vm);
        // Computed before the slot borrow; `None` on the legacy path.
        let adjust = self.class_adjust(vm.machine);
        let idx = self.index(vm);
        if let Some(r) = &mut self.slots[idx] {
            let dt = now - r.last_update;
            r.progress += r.rate * dt;
            r.io_ops += r.iops_rate * dt;
            r.last_update = now;
            r.rate = self.perf.rate(r.app_idx, nb) / r.slowdown;
            r.iops_rate = self.perf.iops(r.app_idx, nb) / r.slowdown;
            if let Some((rt_div, io_mul)) = adjust {
                // Applied as an extra division/multiplication so the
                // legacy rate expression above stays bit-identical on
                // reference-class machines (the branch is not taken).
                r.rate /= rt_div;
                r.iops_rate *= io_mul;
            }
            r.version += 1;
            self.base_version[idx] = r.version;
            let remaining = (1.0 - r.progress).max(0.0);
            let eta = now + remaining / r.rate.max(1e-12);
            events.push(
                eta,
                EventKind::Completion {
                    vm,
                    version: r.version,
                },
            );
        }
    }

    /// Processes a completion event: returns `None` for a stale event
    /// (version mismatch from before a neighbour change), otherwise frees
    /// the slot and returns the realized measurements.
    pub fn complete(&mut self, vm: VmRef, version: u64, now: f64) -> Option<Completed> {
        let idx = self.index(vm);
        let valid = matches!(&self.slots[idx], Some(r) if r.version == version);
        if !valid {
            return None;
        }
        let r = self.slots[idx].take().expect("validated above");
        let runtime = now - r.start_time;
        let final_ops = r.io_ops + r.iops_rate * (now - r.last_update);
        let avg_iops = final_ops / runtime.max(1e-9);
        Some(Completed {
            app_idx: r.app_idx,
            neighbor_at_start: r.neighbor_at_start,
            runtime,
            avg_iops,
        })
    }

    /// Forcibly removes the task on `vm` (machine crash): its progress is
    /// lost and any outstanding completion event goes stale because the
    /// slot is empty and later occupants start past its version. Returns
    /// the evicted entry, or `None` for a free slot.
    pub fn evict(&mut self, vm: VmRef) -> Option<Running> {
        let idx = self.index(vm);
        self.slots[idx].take()
    }
}
