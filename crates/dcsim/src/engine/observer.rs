//! The observer layer: hooks the event kernel calls as the simulation
//! unfolds. The kernel itself only moves time forward and keeps the slot
//! state consistent — everything *about* a run (metrics, observation
//! streams, online model adaptation) is an observer.

use super::TaskObservation;
use crate::perf::IDLE;
use tracon_core::{
    AdaptiveModel, AppModelSet, AppProfile, Characteristics, ModelKind, MonitorConfig, Predictor,
    Response, ResponseScale, TrainingData, VmRef,
};

/// A task arrival (admitted or refused).
#[derive(Debug, Clone, Copy)]
pub struct ArrivalInfo {
    /// Simulation time of the arrival.
    pub time: f64,
    /// Index into the arrival trace.
    pub trace_idx: usize,
    /// Application (pair-table) index of the arriving task.
    pub app_idx: usize,
}

/// A task placement onto a VM slot.
#[derive(Debug, Clone, Copy)]
pub struct PlacementInfo {
    /// Simulation time of the placement.
    pub time: f64,
    /// The chosen slot.
    pub vm: VmRef,
    /// Task id (its index in the arrival trace).
    pub task_id: u64,
    /// Application index of the placed task.
    pub app_idx: usize,
    /// Application index of the neighbour resident at placement (or
    /// [`IDLE`]).
    pub neighbor_at_start: usize,
    /// Queueing delay: placement time minus arrival time.
    pub wait: f64,
}

/// A task completion with its realized measurements.
#[derive(Debug, Clone, Copy)]
pub struct CompletionInfo {
    /// Simulation time of the completion.
    pub time: f64,
    /// The slot that freed up.
    pub vm: VmRef,
    /// Application index of the completed task.
    pub app_idx: usize,
    /// Application index of the neighbour resident when the task started
    /// (or [`IDLE`]) — the state the placement prediction was made
    /// against.
    pub neighbor_at_start: usize,
    /// Realized runtime, seconds.
    pub runtime: f64,
    /// Realized average IOPS.
    pub avg_iops: f64,
}

/// A machine crash injected by a [`FaultPlan`](crate::faults::FaultPlan).
#[derive(Debug, Clone, Copy)]
pub struct MachineCrashInfo {
    /// Simulation time of the crash.
    pub time: f64,
    /// The machine that went down.
    pub machine: usize,
    /// Tasks that were in flight on the machine (all lose their
    /// progress).
    pub evicted: usize,
    /// How many of those re-entered the admission queue (the rest
    /// exhausted their attempts and were abandoned).
    pub requeued: usize,
}

/// One failed task execution (per-task fault or abandonment).
#[derive(Debug, Clone, Copy)]
pub struct TaskFailureInfo {
    /// Simulation time of the failure.
    pub time: f64,
    /// The slot the execution ran on.
    pub vm: VmRef,
    /// Task id (its index in the arrival trace).
    pub task_id: u64,
    /// Application index of the task.
    pub app_idx: usize,
    /// Which execution failed (0-based).
    pub attempt: u32,
    /// Whether the task exhausted its attempts and leaves the system.
    pub abandoned: bool,
}

/// Observes a simulation as it runs. All hooks default to no-ops, so an
/// observer only implements what it cares about. The unit type `()` is
/// the null observer.
pub trait SimObserver {
    /// An arrival was admitted to the queue.
    fn on_arrival(&mut self, _info: &ArrivalInfo) {}
    /// An arrival was refused (bounded admission queue was full).
    fn on_refusal(&mut self, _info: &ArrivalInfo) {}
    /// The scheduler ran and made `n_assigned` assignments.
    fn on_dispatch(&mut self, _time: f64, _n_assigned: usize) {}
    /// A task was placed onto a slot.
    fn on_placement(&mut self, _info: &PlacementInfo) {}
    /// A task completed.
    fn on_completion(&mut self, _info: &CompletionInfo) {}
    /// A machine crashed (fault injection), evicting its residents.
    fn on_machine_crash(&mut self, _info: &MachineCrashInfo) {}
    /// A crashed machine recovered and its slots are placeable again.
    fn on_machine_recover(&mut self, _time: f64, _machine: usize) {}
    /// A task execution failed (fault injection); the task was requeued
    /// unless `info.abandoned`.
    fn on_task_failure(&mut self, _info: &TaskFailureInfo) {}
    /// Polled by the kernel after every event: return a predictor to swap
    /// the scheduler's scoring policy mid-run (online model adaptation).
    /// Return `None` to keep the current one.
    fn updated_predictor(&mut self) -> Option<Predictor> {
        None
    }
}

/// The null observer.
impl SimObserver for () {}

/// Built-in observer accumulating the [`super::SimResult`] totals.
#[derive(Debug, Default)]
pub(crate) struct MetricsObserver {
    pub(crate) completed: usize,
    pub(crate) refused: usize,
    pub(crate) total_runtime: f64,
    pub(crate) total_iops: f64,
    pub(crate) makespan: f64,
    pub(crate) machine_crashes: usize,
    pub(crate) machine_recoveries: usize,
    pub(crate) task_failures: usize,
    pub(crate) requeues: usize,
    pub(crate) abandoned: usize,
    wait_sum: f64,
    wait_count: usize,
}

impl MetricsObserver {
    pub(crate) fn mean_wait(&self) -> f64 {
        if self.wait_count > 0 {
            self.wait_sum / self.wait_count as f64
        } else {
            0.0
        }
    }
}

impl SimObserver for MetricsObserver {
    fn on_refusal(&mut self, _info: &ArrivalInfo) {
        self.refused += 1;
    }

    fn on_placement(&mut self, info: &PlacementInfo) {
        self.wait_sum += info.wait;
        self.wait_count += 1;
    }

    fn on_completion(&mut self, info: &CompletionInfo) {
        self.completed += 1;
        self.total_runtime += info.runtime;
        self.total_iops += info.avg_iops;
        self.makespan = self.makespan.max(info.time);
    }

    fn on_machine_crash(&mut self, info: &MachineCrashInfo) {
        self.machine_crashes += 1;
        self.requeues += info.requeued;
        self.abandoned += info.evicted - info.requeued;
    }

    fn on_machine_recover(&mut self, _time: f64, _machine: usize) {
        self.machine_recoveries += 1;
    }

    fn on_task_failure(&mut self, info: &TaskFailureInfo) {
        self.task_failures += 1;
        if info.abandoned {
            self.abandoned += 1;
        } else {
            self.requeues += 1;
        }
    }
}

/// The joint feature vector the prediction module would have used for a
/// task: its own solo profile followed by the neighbour's (zeros when the
/// sibling slot was idle).
fn joint_features(app_features: &[[f64; 4]], app_idx: usize, neighbor: usize) -> [f64; 8] {
    let t = app_features[app_idx];
    let nb = if neighbor == IDLE {
        [0.0; 4]
    } else {
        app_features[neighbor]
    };
    [t[0], t[1], t[2], t[3], nb[0], nb[1], nb[2], nb[3]]
}

/// Built-in observer recording the monitor's feedback stream: one
/// [`TaskObservation`] per completion.
pub(crate) struct ObservationCollector {
    app_features: Vec<[f64; 4]>,
    observations: Vec<TaskObservation>,
}

impl ObservationCollector {
    pub(crate) fn new(app_features: Vec<[f64; 4]>) -> Self {
        ObservationCollector {
            app_features,
            observations: Vec::new(),
        }
    }

    pub(crate) fn into_observations(self) -> Vec<TaskObservation> {
        self.observations
    }
}

impl SimObserver for ObservationCollector {
    fn on_completion(&mut self, info: &CompletionInfo) {
        self.observations.push(TaskObservation {
            features: joint_features(&self.app_features, info.app_idx, info.neighbor_at_start),
            runtime: info.runtime,
            iops: info.avg_iops,
        });
    }
}

/// Online model adaptation as an observer (paper Section 4.6): every
/// completion is fed to per-application [`AdaptiveModel`]s for runtime
/// and IOPS; whenever a monitor rebuild fires, the next
/// [`SimObserver::updated_predictor`] poll hands the kernel a predictor
/// retrained on the rolling observation window, and the scheduler starts
/// scoring against it *mid-run* — no simulation restart, no post-hoc
/// replay.
pub struct AdaptiveObserver {
    names: Vec<String>,
    profiles: Vec<AppProfile>,
    app_features: Vec<[f64; 4]>,
    rt: Vec<AdaptiveModel>,
    io: Vec<AdaptiveModel>,
    observed: usize,
    rebuilt_since_export: bool,
    predictor_swaps: usize,
}

impl AdaptiveObserver {
    /// Creates the observer over the applications in `names` (pair-table
    /// index order). `base` supplies the solo profiles; `initial_rt` /
    /// `initial_io` seed each application's monitor window (typically
    /// distilled from the stale deployed model); `kind` is the model
    /// family rebuilt online.
    ///
    /// # Panics
    /// Panics when an initial training set is empty or `base` does not
    /// know an application.
    pub fn new(
        base: &Predictor,
        names: &[String],
        kind: ModelKind,
        initial_rt: &[TrainingData],
        initial_io: &[TrainingData],
        cfg: MonitorConfig,
    ) -> Self {
        assert_eq!(names.len(), initial_rt.len());
        assert_eq!(names.len(), initial_io.len());
        let profiles: Vec<AppProfile> = names.iter().map(|n| base.profile(n).clone()).collect();
        let app_features: Vec<[f64; 4]> = profiles.iter().map(|p| p.solo.as_array()).collect();
        let rt = initial_rt
            .iter()
            .map(|d| {
                AdaptiveModel::new_scaled(
                    kind,
                    ResponseScale::for_response(Response::Runtime),
                    d,
                    cfg,
                )
            })
            .collect();
        let io = initial_io
            .iter()
            .map(|d| {
                AdaptiveModel::new_scaled(kind, ResponseScale::for_response(Response::Iops), d, cfg)
            })
            .collect();
        AdaptiveObserver {
            names: names.to_vec(),
            profiles,
            app_features,
            rt,
            io,
            observed: 0,
            rebuilt_since_export: false,
            predictor_swaps: 0,
        }
    }

    /// Predicts the runtime of app `app_idx` next to `neighbor` (or
    /// [`IDLE`]) with the *current* adapted model — what the scheduler
    /// would be told right now.
    pub fn predict_runtime(&self, app_idx: usize, neighbor: usize) -> f64 {
        self.rt[app_idx].predict(&joint_features(&self.app_features, app_idx, neighbor))
    }

    /// Completions observed so far.
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// Total monitor rebuilds across all per-app models.
    pub fn total_rebuilds(&self) -> usize {
        self.rt.iter().chain(&self.io).map(|m| m.rebuilds()).sum()
    }

    /// Total drift events detected across all per-app models.
    pub fn total_drifts(&self) -> usize {
        self.rt
            .iter()
            .chain(&self.io)
            .map(|m| m.drift_events().len())
            .sum()
    }

    /// How many times the kernel swapped the scoring predictor on this
    /// observer's behalf.
    pub fn predictor_swaps(&self) -> usize {
        self.predictor_swaps
    }

    /// Per-application runtime monitors, pair-table index order.
    pub fn runtime_models(&self) -> &[AdaptiveModel] {
        &self.rt
    }

    /// Per-application IOPS monitors, pair-table index order.
    pub fn iops_models(&self) -> &[AdaptiveModel] {
        &self.io
    }

    /// A standalone predictor snapshot of the current adapted models.
    pub fn export_predictor(&self) -> Predictor {
        let mut p = Predictor::new();
        for (i, profile) in self.profiles.iter().enumerate() {
            p.add_app(
                profile.clone(),
                AppModelSet {
                    runtime: self.rt[i].export_model(),
                    iops: self.io[i].export_model(),
                },
            );
        }
        p
    }

    /// The solo characteristics of an application, as the monitor sees
    /// them.
    pub fn solo_chars(&self, app_idx: usize) -> Characteristics {
        self.profiles[app_idx].solo
    }

    /// Application names in pair-table index order.
    pub fn app_names(&self) -> &[String] {
        &self.names
    }

    /// Feeds one realized completion into the per-app monitors, outside
    /// the [`SimObserver`] callback path. `neighbor` is the co-located
    /// application's pair-table index, or `None` for a solo run. Returns
    /// whether this observation triggered a model rebuild. This is the
    /// entry point for live (wall-clock) traffic sources such as the
    /// tracond daemon, which have no `CompletionInfo` to hand.
    pub fn record(
        &mut self,
        app_idx: usize,
        neighbor: Option<usize>,
        runtime: f64,
        avg_iops: f64,
    ) -> bool {
        let neighbor = neighbor.unwrap_or(crate::perf::IDLE);
        let features = joint_features(&self.app_features, app_idx, neighbor);
        let rt_out = self.rt[app_idx].observe(features, runtime);
        let io_out = self.io[app_idx].observe(features, avg_iops);
        self.observed += 1;
        let rebuilt = rt_out.rebuilt || io_out.rebuilt;
        if rebuilt {
            self.rebuilt_since_export = true;
        }
        rebuilt
    }
}

impl SimObserver for AdaptiveObserver {
    fn on_completion(&mut self, info: &CompletionInfo) {
        let neighbor = if info.neighbor_at_start == crate::perf::IDLE {
            None
        } else {
            Some(info.neighbor_at_start)
        };
        self.record(info.app_idx, neighbor, info.runtime, info.avg_iops);
    }

    fn updated_predictor(&mut self) -> Option<Predictor> {
        if !self.rebuilt_since_export {
            return None;
        }
        self.rebuilt_since_export = false;
        self.predictor_swaps += 1;
        Some(self.export_predictor())
    }
}
