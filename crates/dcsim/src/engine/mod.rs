//! The discrete-event data-center simulator (paper Section 4.2).
//!
//! Machines host two VMs each; tasks arrive (statically at t = 0 or via a
//! Poisson process), a pluggable scheduler assigns them, and running
//! tasks progress at rates taken from the *measured* pair-performance
//! table. When a task's neighbour changes (its sibling completes or a new
//! task is placed beside it), the remaining work is rescaled — exactly
//! the paper's "task A has finished 80% of its workload, the remaining
//! 20% runs concurrently with task C" rule.
//!
//! The simulator is split into an event kernel and an observer layer:
//!
//! ```text
//!            ┌─────────────────────────────────────────────┐
//!            │                event kernel                 │
//!            │  KernelQueue ──► main loop ──► DispatchPolicy│
//!            │      ▲             │               │        │
//!            │      └── SlotState ┘          Scheduler     │
//!            └──────────┬──────────────────────────────────┘
//!                       │ hooks (arrival / dispatch /
//!                       │        placement / completion)
//!            ┌──────────▼──────────────────────────────────┐
//!            │               observer layer                │
//!            │  MetricsObserver · ObservationCollector ·   │
//!            │  AdaptiveObserver · user SimObservers       │
//!            └─────────────────────────────────────────────┘
//! ```
//!
//! * [`event`](self) — the totally-ordered event queue behind the
//!   `KernelQueue` trait, with two backends selected via
//!   [`QueueBackend`]: the default arena-backed timing wheel and the
//!   reference binary heap it is gated against bit-for-bit. The main
//!   loop drains *coincidence groups* (runs of events within
//!   [`COINCIDENCE_EPS`]) in one batched call instead of re-peeking the
//!   queue per event,
//! * [`slots`](self) — per-slot running state and remaining-work
//!   rescaling,
//! * [`dispatch`](self) — the batch-window trigger and queue-window
//!   drain,
//! * [`observer`] — the [`SimObserver`] trait and built-ins, including
//!   online model adaptation via [`AdaptiveObserver`].

mod dispatch;
mod event;
pub mod observer;
mod slots;

pub use event::COINCIDENCE_EPS;
pub use observer::{
    AdaptiveObserver, ArrivalInfo, CompletionInfo, MachineCrashInfo, PlacementInfo, SimObserver,
    TaskFailureInfo,
};

use crate::arrival::ArrivalEvent;
use crate::faults::FaultPlan;
use crate::machines::MachineClassConfig;
use crate::setup::Testbed;
use dispatch::DispatchPolicy;
use event::{Event, EventKind, HeapQueue, KernelQueue, TimingWheel};
use observer::{MetricsObserver, ObservationCollector};
use slots::{NetCtx, SlotState};
use std::collections::VecDeque;
use std::fmt;
use tracon_core::{
    ClusterState, Fifo, Mibs, MibsAblation, MibsVariant, Mios, Mix, Objective, Scheduler,
    ScoringPolicy, Task, VmRef,
};

/// Which scheduling algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// First-in-first-out baseline.
    Fifo,
    /// Minimum-interference online scheduler (Algorithm 1).
    Mios,
    /// Minimum-interference batch scheduler with the given queue length.
    Mibs(usize),
    /// Minimum-interference mixed scheduler with the given queue length.
    Mix(usize),
    /// An ablated MIBS variant (design-decision ablations) with the given
    /// queue length.
    Ablation(MibsVariant, usize),
}

impl SchedulerKind {
    /// Instantiates the scheduler.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match *self {
            SchedulerKind::Fifo => Box::new(Fifo),
            SchedulerKind::Mios => Box::new(Mios),
            SchedulerKind::Mibs(l) => Box::new(Mibs::new(l)),
            SchedulerKind::Mix(l) => Box::new(Mix::new(l)),
            SchedulerKind::Ablation(v, _) => Box::new(MibsAblation::new(v)),
        }
    }

    /// The batch window: how many queued tasks the scheduler sees at once
    /// (unbounded for the online schedulers).
    pub fn batch_window(&self) -> Option<usize> {
        match *self {
            SchedulerKind::Mibs(l) | SchedulerKind::Mix(l) | SchedulerKind::Ablation(_, l) => {
                Some(l)
            }
            _ => None,
        }
    }

    /// Display name.
    pub fn name(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SchedulerKind::Fifo => f.write_str("FIFO"),
            SchedulerKind::Mios => f.write_str("MIOS"),
            SchedulerKind::Mibs(l) => write!(f, "MIBS_{l}"),
            SchedulerKind::Mix(l) => write!(f, "MIX_{l}"),
            SchedulerKind::Ablation(v, _) => f.write_str(v.name()),
        }
    }
}

/// Which event-queue backend drives the kernel (see the [`event`](self)
/// module docs). The backends are gated to produce bit-identical
/// simulations; the heap is retained as the equivalence oracle and for
/// apples-to-apples queue microbenchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueueBackend {
    /// Arena-backed calendar-queue timing wheel — O(1) amortized push
    /// and pop (the default).
    #[default]
    TimingWheel,
    /// The reference `BinaryHeap` kernel.
    BinaryHeap,
}

/// Bench hook, not public API: round-trips `times` through a fresh queue
/// of the chosen backend and returns a drain-order checksum (so the
/// optimizer cannot elide the work). Used by the bench collector's
/// `queue_push_pop_ns` metric.
#[doc(hidden)]
pub fn queue_roundtrip_checksum(times: &[f64], backend: QueueBackend) -> u64 {
    fn go<Q: KernelQueue>(times: &[f64]) -> u64 {
        let mut q = Q::with_capacity(times.len());
        for (i, &t) in times.iter().enumerate() {
            q.push(t, EventKind::Arrival(i));
        }
        let mut sum = 0u64;
        while let Some(e) = q.pop() {
            sum = sum.wrapping_mul(0x100000001b3) ^ e.time.to_bits() ^ e.seq;
        }
        sum
    }
    match backend {
        QueueBackend::TimingWheel => go::<TimingWheel>(times),
        QueueBackend::BinaryHeap => go::<HeapQueue>(times),
    }
}

/// Simulation outcome metrics.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Scheduler display name.
    pub scheduler: String,
    /// Tasks that arrived within the horizon.
    pub arrived: usize,
    /// Tasks completed within the horizon.
    pub completed: usize,
    /// Arrivals refused because the admission queue was full (always 0
    /// with an unbounded queue).
    pub refused: usize,
    /// Sum of task runtimes (completion - start) over completed tasks —
    /// the paper's `RT_total` (equation 3).
    pub total_runtime: f64,
    /// Sum of per-task average IOPS over completed tasks — the paper's
    /// `IOPS_total` (equation 4).
    pub total_iops: f64,
    /// Time the last completion happened (static scenarios: makespan).
    pub makespan: f64,
    /// Mean queueing delay (start - arrival) of started tasks.
    pub mean_wait: f64,
    /// Realized observations `(joint features, runtime, avg IOPS)` per
    /// completed task — the stream TRACON's monitor feeds back into model
    /// adaptation. Empty unless requested via
    /// [`Simulation::with_observation_collection`].
    pub observations: Vec<TaskObservation>,
    /// Machine crashes injected by the fault plan (0 without one).
    pub machine_crashes: usize,
    /// Machine recoveries within the horizon.
    pub machine_recoveries: usize,
    /// Failed task executions (per-task faults at completion).
    pub task_failures: usize,
    /// Re-admissions after a crash eviction or a failed execution.
    pub requeues: usize,
    /// Tasks that exhausted their attempts and left the system.
    pub abandoned: usize,
    /// Kernel events delivered by the event queue within the horizon
    /// (arrivals, completions including stale ones, fault transitions) —
    /// the denominator behind the collector's `kernel_events_per_sec`.
    pub events_processed: usize,
}

/// One realized task observation collected by the monitor: the joint
/// feature vector the prediction module would have used (task profile +
/// the profile of the neighbour resident when the task started), with the
/// measured outcome.
#[derive(Debug, Clone, Copy)]
pub struct TaskObservation {
    /// `[task r/w/cpu/dom0, neighbour r/w/cpu/dom0]`.
    pub features: [f64; 8],
    /// Realized runtime, seconds.
    pub runtime: f64,
    /// Realized average IOPS.
    pub iops: f64,
}

impl SimResult {
    /// Throughput in tasks per hour over the simulated horizon.
    pub fn throughput_per_hour(&self, horizon_s: f64) -> f64 {
        self.completed as f64 / (horizon_s / 3600.0)
    }

    /// Tasks neither completed, refused, nor abandoned by the end of the
    /// run: still queued, still running, or past the horizon.
    pub fn unfinished(&self) -> usize {
        self.arrived - self.completed - self.refused - self.abandoned
    }
}

/// The simulator.
pub struct Simulation<'tb> {
    testbed: &'tb Testbed,
    /// Number of physical machines.
    pub n_machines: usize,
    /// VM slots per machine (the paper uses 2).
    pub slots_per_machine: usize,
    /// Scheduling algorithm.
    pub scheduler: SchedulerKind,
    /// Optimization objective.
    pub objective: Objective,
    /// Override predictor (e.g. the oracle); defaults to the testbed's.
    predictor_override: Option<&'tb tracon_core::Predictor>,
    /// Admission-queue capacity: arrivals beyond this bound are refused
    /// (`None` = unbounded buffering).
    pub queue_capacity: Option<usize>,
    collect_observations: bool,
    /// Fault schedule injected into the event kernel (`None` = the
    /// failure-free paper setting).
    faults: Option<&'tb FaultPlan>,
    /// Event-queue backend driving the kernel.
    pub queue_backend: QueueBackend,
    /// Heterogeneous machine classes (`None` = the homogeneous,
    /// reference-class paper setting).
    machine_classes: Option<MachineClassConfig>,
    /// When set, the engine still *simulates* the machine classes as
    /// ground truth but the scoring policy never learns about them — the
    /// network-oblivious baseline `ext_network` compares against.
    network_oblivious: bool,
}

impl<'tb> Simulation<'tb> {
    /// Creates a simulator over a built testbed.
    pub fn new(testbed: &'tb Testbed, n_machines: usize, scheduler: SchedulerKind) -> Self {
        Simulation {
            testbed,
            n_machines,
            slots_per_machine: 2,
            scheduler,
            objective: Objective::MinRuntime,
            predictor_override: None,
            queue_capacity: None,
            collect_observations: false,
            faults: None,
            queue_backend: QueueBackend::default(),
            machine_classes: None,
            network_oblivious: false,
        }
    }

    /// Declares the cluster heterogeneous: the engine simulates each
    /// machine's class (solo factors, shared-link M/M/1 contention) as
    /// ground truth, and — unless
    /// [`Simulation::with_network_oblivious_scoring`] is also set — the
    /// scoring policy prices the same model when placing tasks.
    pub fn with_machine_classes(mut self, config: MachineClassConfig) -> Self {
        assert_eq!(
            config.assignment.len(),
            self.n_machines,
            "one class index per machine"
        );
        self.machine_classes = Some(config);
        self
    }

    /// Keeps the scheduler blind to the machine classes while the engine
    /// still simulates them — the baseline that quantifies what
    /// network-awareness buys on a heterogeneous cluster.
    pub fn with_network_oblivious_scoring(mut self) -> Self {
        self.network_oblivious = true;
        self
    }

    /// Selects the event-queue backend (default: the timing wheel). The
    /// backends are bit-identical by construction; the heap exists as the
    /// equivalence oracle for tests and benchmarks.
    pub fn with_queue_backend(mut self, backend: QueueBackend) -> Self {
        self.queue_backend = backend;
        self
    }

    /// Sets the optimization objective.
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Uses a different prediction module (e.g. the measured-statistics
    /// oracle, or a WMM/LM-backed predictor for the Fig 4 comparison).
    pub fn with_predictor(mut self, predictor: &'tb tracon_core::Predictor) -> Self {
        self.predictor_override = Some(predictor);
        self
    }

    /// Bounds the admission queue: arrivals finding the queue full are
    /// refused (counted in `arrived` but never scheduled).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = Some(capacity);
        self
    }

    /// Collects per-task realized observations (the monitor's feedback
    /// stream) into [`SimResult::observations`].
    pub fn with_observation_collection(mut self) -> Self {
        self.collect_observations = true;
        self
    }

    /// Injects a fault plan: machine crash/recovery events enter the
    /// event queue, evicted tasks are rescheduled interference-aware on
    /// the surviving machines, and per-attempt failure/straggler
    /// decisions apply. An empty plan reproduces the fault-free run
    /// bit-for-bit.
    pub fn with_faults(mut self, plan: &'tb FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Runs the simulation over an arrival trace. `horizon_s` bounds the
    /// simulated time for dynamic scenarios (`None` runs to completion);
    /// an event at exactly `t == horizon_s` is still processed.
    pub fn run(&self, trace: &[ArrivalEvent], horizon_s: Option<f64>) -> SimResult {
        self.run_with_observer(trace, horizon_s, &mut ())
    }

    /// Like [`Simulation::run`], additionally streaming kernel events to
    /// `observer`. If the observer hands back an updated predictor (see
    /// [`SimObserver::updated_predictor`]), the scheduler's scoring
    /// policy is swapped mid-run — this is how online model adaptation
    /// ([`AdaptiveObserver`]) changes scheduling decisions while the
    /// simulation is in flight.
    pub fn run_with_observer(
        &self,
        trace: &[ArrivalEvent],
        horizon_s: Option<f64>,
        observer: &mut dyn SimObserver,
    ) -> SimResult {
        match self.queue_backend {
            QueueBackend::TimingWheel => self.run_impl::<TimingWheel>(trace, horizon_s, observer),
            QueueBackend::BinaryHeap => self.run_impl::<HeapQueue>(trace, horizon_s, observer),
        }
    }

    fn run_impl<Q: KernelQueue>(
        &self,
        trace: &[ArrivalEvent],
        horizon_s: Option<f64>,
        observer: &mut dyn SimObserver,
    ) -> SimResult {
        let perf = &self.testbed.perf;
        let names = &perf.names;
        let mut scheduler = self.scheduler.build();
        let predictor = self.predictor_override.unwrap_or(&self.testbed.predictor);
        // Per-app offered link load in MB/s (perf-table indexed); present
        // only with a machine-class configuration.
        let net_demand: Option<Vec<f64>> = self.machine_classes.as_ref().map(|cfg| {
            (0..names.len())
                .map(|i| perf.net_demand_mb(i, cfg.kb_per_io))
                .collect()
        });
        let mut app_chars = self.testbed.app_chars.clone();
        if let Some(demand) = &net_demand {
            // The monitor's canonical characteristics gain the network
            // lane, so neighbour backgrounds aggregate link load.
            for (i, name) in names.iter().enumerate() {
                if let Some(c) = app_chars.get_mut(name) {
                    c.net_mbps = demand[i];
                }
            }
        }
        let mut cluster = ClusterState::new(self.n_machines, self.slots_per_machine, app_chars);
        if let Some(cfg) = &self.machine_classes {
            cluster.set_machine_classes(cfg.classes.clone(), cfg.assignment.clone());
        }
        let dispatch = DispatchPolicy::new(self.scheduler.batch_window());

        // Intern the perf-table app names once; every task constructed in
        // the arrival loop reuses these ids (no per-arrival allocation).
        let app_ids: Vec<tracon_core::AppId> = names
            .iter()
            .map(|n| cluster.registry().expect_id(n))
            .collect();

        // What the scheduler gets to know about the hardware: the class
        // table plus AppId-indexed demand. `None` keeps scoring blind —
        // either no classes exist or the run is network-oblivious (the
        // engine then still simulates the classes as ground truth).
        let net_scoring: Option<(Vec<tracon_core::MachineClass>, Vec<f64>)> =
            match (&self.machine_classes, &net_demand) {
                (Some(cfg), Some(demand)) if !self.network_oblivious => {
                    let mut by_id = vec![0.0; app_ids.len()];
                    for (i, id) in app_ids.iter().enumerate() {
                        by_id[id.index()] = demand[i];
                    }
                    Some((cfg.classes.clone(), by_id))
                }
                _ => None,
            };
        let mut scoring = ScoringPolicy::new(predictor, self.objective);
        if let Some((classes, by_id)) = &net_scoring {
            scoring = scoring.with_machine_classes(classes.clone(), by_id.clone());
        }

        let n_slots = self.n_machines * self.slots_per_machine;
        let mut slots = SlotState::new(self.n_machines, self.slots_per_machine, perf);
        if let (Some(cfg), Some(demand)) = (&self.machine_classes, &net_demand) {
            slots = slots.with_net(NetCtx {
                classes: cfg.classes.clone(),
                assignment: cfg.assignment.clone(),
                demand: demand.clone(),
            });
        }

        let n_fault_events = self.faults.map_or(0, |p| p.machine_events.len());
        let mut events = Q::with_capacity(trace.len() + n_slots + n_fault_events);
        for (i, a) in trace.iter().enumerate() {
            events.push(a.time, EventKind::Arrival(i));
        }
        if let Some(plan) = self.faults {
            for e in &plan.machine_events {
                events.push(
                    e.time,
                    EventKind::MachineFault {
                        machine: e.machine,
                        up: e.up,
                    },
                );
            }
        }
        // Failed executions per task id; only touched when a plan is set.
        let mut attempts: Vec<u32> = vec![
            0;
            if self.faults.is_some() {
                trace.len()
            } else {
                0
            }
        ];

        let mut queue: VecDeque<Task> = VecDeque::new();
        // Arrival times by task id, for wait-time accounting.
        let arrival_time: Vec<f64> = trace.iter().map(|a| a.time).collect();

        let mut metrics = MetricsObserver::default();
        let mut collector = self.collect_observations.then(|| {
            // Profile features per app index, for observation records.
            let app_features: Vec<[f64; 4]> = names
                .iter()
                .map(|n| self.testbed.app_chars[n].as_array())
                .collect();
            ObservationCollector::new(app_features)
        });

        // --- main loop ------------------------------------------------
        // Events are drained in coincidence groups: one batched
        // `pop_coincident_into` call pulls a whole run of simultaneous
        // events (a static batch at t = 0, sibling completions) instead
        // of re-peeking the queue after every event. `group[gi..]` is the
        // unprocessed tail, always sorted by `(time, seq)`.
        let mut events_processed = 0usize;
        let mut group: Vec<Event> = Vec::new();
        let mut gi = 0usize;
        loop {
            if gi >= group.len() {
                group.clear();
                gi = 0;
                if !events.pop_coincident_into(&mut group) {
                    break;
                }
            } else if let Some(t) = events.next_time() {
                // Processing an event can schedule a completion at (or
                // before) the next buffered timestamp — e.g. a refresh
                // with zero remaining work lands at `now` itself. Pull it
                // in so the global `(time, seq)` order is preserved; ties
                // stay with the buffered event, whose seq is lower.
                if t.total_cmp(&group[gi].time).is_lt() {
                    let ev = events.pop().expect("peeked a pending event");
                    group.insert(gi, ev);
                }
            }
            let ev = group[gi];
            let now = ev.time;
            if let Some(h) = horizon_s {
                if now > h {
                    break;
                }
            }
            events_processed += 1;
            let mut schedule_needed = false;
            match ev.kind {
                EventKind::Arrival(i) => {
                    let a = &trace[i];
                    let info = ArrivalInfo {
                        time: now,
                        trace_idx: i,
                        app_idx: a.app_idx,
                    };
                    let admitted = match self.queue_capacity {
                        Some(cap) => queue.len() < cap,
                        None => true,
                    };
                    if admitted {
                        queue.push_back(Task::new(i as u64, app_ids[a.app_idx]));
                        schedule_needed = true;
                        observer.on_arrival(&info);
                    } else {
                        metrics.on_refusal(&info);
                        observer.on_refusal(&info);
                    }
                }
                EventKind::Completion { vm, version } => {
                    let Some(done) = slots.complete(vm, version, now) else {
                        gi += 1;
                        continue; // stale event from before a neighbour change
                    };
                    let resident = cluster.clear(vm);
                    // Fault injection: the attempt may fail at completion,
                    // wasting its runtime and re-entering the queue.
                    let mut failed = false;
                    if let Some(plan) = self.faults {
                        let att = attempts[resident.task_id as usize];
                        if plan.attempt_fails(resident.task_id, att) {
                            attempts[resident.task_id as usize] = att + 1;
                            let abandoned = att + 1 >= plan.config().max_attempts;
                            let finfo = TaskFailureInfo {
                                time: now,
                                vm,
                                task_id: resident.task_id,
                                app_idx: done.app_idx,
                                attempt: att,
                                abandoned,
                            };
                            metrics.on_task_failure(&finfo);
                            observer.on_task_failure(&finfo);
                            if !abandoned {
                                queue.push_back(Task::new(resident.task_id, resident.app));
                            }
                            failed = true;
                        }
                    }
                    if !failed {
                        let info = CompletionInfo {
                            time: now,
                            vm,
                            app_idx: done.app_idx,
                            neighbor_at_start: done.neighbor_at_start,
                            runtime: done.runtime,
                            avg_iops: done.avg_iops,
                        };
                        metrics.on_completion(&info);
                        if let Some(c) = &mut collector {
                            c.on_completion(&info);
                        }
                        observer.on_completion(&info);
                    }
                    // The surviving sibling speeds up (or a later placement
                    // slows it down again).
                    for s in 0..self.slots_per_machine {
                        if s != vm.slot {
                            slots.refresh(
                                VmRef {
                                    machine: vm.machine,
                                    slot: s,
                                },
                                now,
                                &mut events,
                            );
                        }
                    }
                    schedule_needed = true;
                }
                EventKind::MachineFault { machine, up } => {
                    if up {
                        if cluster.is_down(machine) {
                            cluster.set_up(machine);
                            metrics.on_machine_recover(now, machine);
                            observer.on_machine_recover(now, machine);
                            schedule_needed = true;
                        }
                    } else if !cluster.is_down(machine) {
                        let max_attempts =
                            self.faults.map_or(u32::MAX, |p| p.config().max_attempts);
                        let evicted = cluster.set_down(machine);
                        let n_evicted = evicted.len();
                        let mut requeued = 0;
                        for (vm, resident) in evicted {
                            slots.evict(vm);
                            // A crash eviction consumes an attempt; the
                            // task restarts from scratch elsewhere.
                            let att = attempts[resident.task_id as usize] + 1;
                            attempts[resident.task_id as usize] = att;
                            if att < max_attempts {
                                queue.push_back(Task::new(resident.task_id, resident.app));
                                requeued += 1;
                            }
                        }
                        let cinfo = MachineCrashInfo {
                            time: now,
                            machine,
                            evicted: n_evicted,
                            requeued,
                        };
                        metrics.on_machine_crash(&cinfo);
                        observer.on_machine_crash(&cinfo);
                        schedule_needed = true;
                    }
                }
            }

            // Online adaptation: swap in a freshly retrained predictor
            // when the observer's monitor has rebuilt its models. The
            // machine-class table survives the swap — retraining must not
            // silently lose network-awareness.
            if let Some(p) = observer.updated_predictor() {
                scoring = ScoringPolicy::new_owned(p, self.objective);
                if let Some((classes, by_id)) = &net_scoring {
                    scoring = scoring.with_machine_classes(classes.clone(), by_id.clone());
                }
            }

            // The earliest still-pending event: the head of the buffered
            // group tail or of the kernel queue, whichever comes first.
            let next_event_time = match (group.get(gi + 1).map(|e| e.time), events.next_time()) {
                (Some(a), Some(b)) => Some(if b.total_cmp(&a).is_lt() { b } else { a }),
                (a, b) => a.or(b),
            };

            if dispatch.should_dispatch(schedule_needed, now, next_event_time, &queue, &cluster) {
                // Batch schedulers only see their queue window.
                let assignments =
                    dispatch.dispatch(scheduler.as_mut(), &mut queue, &mut cluster, &scoring);
                observer.on_dispatch(now, assignments.len());
                for a in assignments {
                    let task_idx = a.task.id as usize;
                    let app_idx = trace[task_idx].app_idx;
                    let wait = now - arrival_time[task_idx];
                    let nb_at_start = slots.neighbor_app(a.vm);
                    let slowdown = self.faults.map_or(1.0, |p| {
                        p.straggler_slowdown(a.task.id, attempts[a.task.id as usize])
                    });
                    slots.place(a.vm, app_idx, nb_at_start, now, slowdown);
                    slots.refresh(a.vm, now, &mut events);
                    // Existing neighbours now run against a new workload.
                    for s in 0..self.slots_per_machine {
                        if s != a.vm.slot {
                            let nvm = VmRef {
                                machine: a.vm.machine,
                                slot: s,
                            };
                            if slots.is_occupied(nvm) {
                                slots.refresh(nvm, now, &mut events);
                            }
                        }
                    }
                    let info = PlacementInfo {
                        time: now,
                        vm: a.vm,
                        task_id: a.task.id,
                        app_idx,
                        neighbor_at_start: nb_at_start,
                        wait,
                    };
                    metrics.on_placement(&info);
                    observer.on_placement(&info);
                }
            }
            gi += 1;
        }

        SimResult {
            scheduler: self.scheduler.name(),
            arrived: trace.len(),
            completed: metrics.completed,
            refused: metrics.refused,
            total_runtime: metrics.total_runtime,
            total_iops: metrics.total_iops,
            makespan: metrics.makespan,
            mean_wait: metrics.mean_wait(),
            observations: collector
                .map(ObservationCollector::into_observations)
                .unwrap_or_default(),
            machine_crashes: metrics.machine_crashes,
            machine_recoveries: metrics.machine_recoveries,
            task_failures: metrics.task_failures,
            requeues: metrics.requeues,
            abandoned: metrics.abandoned,
            events_processed,
        }
    }
}

/// Speedup of a scheduler relative to FIFO (paper equation 5).
pub fn speedup(fifo: &SimResult, other: &SimResult) -> f64 {
    fifo.total_runtime / other.total_runtime.max(1e-9)
}

/// I/O throughput improvement relative to FIFO (paper equation 6).
pub fn io_boost(fifo: &SimResult, other: &SimResult) -> f64 {
    other.total_iops / fifo.total_iops.max(1e-9)
}

/// Normalized throughput relative to FIFO (Section 4.7).
pub fn normalized_throughput(fifo: &SimResult, other: &SimResult) -> f64 {
    other.completed as f64 / (fifo.completed as f64).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::{poisson_trace, static_batch, WorkloadMix};
    use crate::setup::tests::shared;

    #[test]
    fn static_batch_all_complete() {
        let tb = shared();
        let sim = Simulation::new(tb, 4, SchedulerKind::Fifo);
        let trace = static_batch(8, WorkloadMix::Uniform, 1);
        let r = sim.run(&trace, None);
        assert_eq!(r.arrived, 8);
        assert_eq!(r.completed, 8);
        assert!(r.total_runtime > 0.0);
        assert!(r.total_iops > 0.0);
        assert!(r.makespan > 0.0);
    }

    #[test]
    fn mibs_beats_fifo_on_static_medium() {
        // Averaged over several random batches: a single small batch can
        // favour FIFO by luck, but the mean must favour MIBS.
        let tb = shared();
        let mut speedups = Vec::new();
        for seed in 0..8u64 {
            let trace = static_batch(32, WorkloadMix::Medium, 40 + seed);
            let fifo = Simulation::new(tb, 16, SchedulerKind::Fifo).run(&trace, None);
            let mibs = Simulation::new(tb, 16, SchedulerKind::Mibs(32)).run(&trace, None);
            speedups.push(speedup(&fifo, &mibs));
        }
        let mean = tracon_stats::mean(&speedups);
        assert!(mean > 1.0, "mean MIBS speedup = {mean} ({speedups:?})");
    }

    #[test]
    fn remaining_work_rescaling_bounds_runtime() {
        // A task whose neighbour completes mid-flight must finish sooner
        // than the full-overlap pair runtime and no sooner than solo.
        let tb = shared();
        let trace = static_batch(2, WorkloadMix::Heavy, 3);
        let sim = Simulation::new(tb, 1, SchedulerKind::Fifo);
        let r = sim.run(&trace, None);
        assert_eq!(r.completed, 2);
        let a = trace[0].app_idx;
        let b = trace[1].app_idx;
        let solo = tb.perf.solo_runtime(a) + tb.perf.solo_runtime(b);
        let full_pair = tb.perf.runtime(a, b) + tb.perf.runtime(b, a);
        assert!(
            r.total_runtime >= solo * 0.99,
            "total {} below solo sum {solo}",
            r.total_runtime
        );
        assert!(
            r.total_runtime <= full_pair * 1.01,
            "total {} above full-overlap sum {full_pair}",
            r.total_runtime
        );
    }

    #[test]
    fn dynamic_low_lambda_everything_completes() {
        let tb = shared();
        // Very low arrival rate on a roomy cluster: every task finishes.
        let trace = poisson_trace(2.0, 1800.0, WorkloadMix::Light, 4);
        let sim = Simulation::new(tb, 16, SchedulerKind::Mios);
        let r = sim.run(&trace, Some(3600.0 * 10.0));
        assert_eq!(r.completed, r.arrived, "{r:?}");
        assert!(
            r.mean_wait < 1.0,
            "tasks should start immediately: {}",
            r.mean_wait
        );
    }

    #[test]
    fn dynamic_overload_queues_tasks() {
        let tb = shared();
        // Overloaded cluster: fewer completions than arrivals.
        let trace = poisson_trace(600.0, 600.0, WorkloadMix::Heavy, 5);
        let sim = Simulation::new(tb, 2, SchedulerKind::Fifo);
        let r = sim.run(&trace, Some(600.0));
        assert!(r.completed < r.arrived);
    }

    #[test]
    fn deterministic_given_trace() {
        let tb = shared();
        let trace = static_batch(12, WorkloadMix::Medium, 6);
        let a = Simulation::new(tb, 4, SchedulerKind::Mibs(8)).run(&trace, None);
        let b = Simulation::new(tb, 4, SchedulerKind::Mibs(8)).run(&trace, None);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.total_runtime, b.total_runtime);
    }

    #[test]
    fn objective_changes_behaviour() {
        // Averaged over batches: MIBS_IO's schedules must not lose total
        // IOPS relative to MIBS_RT's.
        let tb = shared();
        let mut rt_io = 0.0;
        let mut io_io = 0.0;
        for seed in 0..8u64 {
            let trace = static_batch(16, WorkloadMix::Medium, 60 + seed);
            let rt = Simulation::new(tb, 8, SchedulerKind::Mibs(16))
                .with_objective(Objective::MinRuntime)
                .run(&trace, None);
            let io = Simulation::new(tb, 8, SchedulerKind::Mibs(16))
                .with_objective(Objective::MaxIops)
                .run(&trace, None);
            assert_eq!(rt.completed, 16);
            assert_eq!(io.completed, 16);
            rt_io += rt.total_iops;
            io_io += io.total_iops;
        }
        assert!(
            io_io >= rt_io * 0.95,
            "MIBS_IO total IOPS {io_io} vs MIBS_RT {rt_io}"
        );
    }

    #[test]
    fn bounded_queue_refuses_overflow() {
        let tb = shared();
        // Overloaded 1-machine cluster with a 2-slot admission queue:
        // most arrivals must be refused, and conservation holds.
        let trace = poisson_trace(120.0, 1800.0, WorkloadMix::Medium, 21);
        let r = Simulation::new(tb, 1, SchedulerKind::Fifo)
            .with_queue_capacity(2)
            .run(&trace, Some(1800.0));
        assert!(r.refused > 0, "expected refusals: {r:?}");
        assert!(r.completed + r.refused <= r.arrived);
        // Unbounded runs never refuse.
        let r2 = Simulation::new(tb, 1, SchedulerKind::Fifo).run(&trace, Some(1800.0));
        assert_eq!(r2.refused, 0);
    }

    #[test]
    fn observation_collection_matches_completions() {
        let tb = shared();
        let trace = static_batch(8, WorkloadMix::Uniform, 31);
        let r = Simulation::new(tb, 4, SchedulerKind::Mibs(8))
            .with_observation_collection()
            .run(&trace, None);
        assert_eq!(r.observations.len(), r.completed);
        for obs in &r.observations {
            assert!(obs.runtime > 0.0);
            assert!(obs.iops >= 0.0);
            assert!(obs.features.iter().all(|f| f.is_finite()));
        }
        // Without the flag, no observations are collected.
        let r2 = Simulation::new(tb, 4, SchedulerKind::Mibs(8)).run(&trace, None);
        assert!(r2.observations.is_empty());
    }

    #[test]
    fn static_batch_is_scheduled_as_one_window() {
        // Same-instant arrivals must reach the batch scheduler together:
        // a full static batch lets MIBS pick globally, which shows up as
        // pairing decisions that single-task dispatch cannot make. We
        // check the mechanism directly: with a batch equal to capacity,
        // MIBS and the head-first ablation must produce *different*
        // assignments on a mixed batch (they coincide when the window
        // degenerates to one task at a time).
        let tb = shared();
        let trace = static_batch(16, WorkloadMix::Uniform, 41);
        let full = Simulation::new(tb, 8, SchedulerKind::Mibs(16)).run(&trace, None);
        let head = Simulation::new(
            tb,
            8,
            SchedulerKind::Ablation(tracon_core::MibsVariant::HeadFirst, 16),
        )
        .run(&trace, None);
        assert_eq!(full.completed, 16);
        assert_eq!(head.completed, 16);
        assert!(
            (full.total_runtime - head.total_runtime).abs() > 1e-6,
            "window scheduling should differ from head-first dispatch"
        );
    }

    #[test]
    fn scheduler_kind_names() {
        assert_eq!(SchedulerKind::Fifo.name(), "FIFO");
        assert_eq!(SchedulerKind::Mibs(8).name(), "MIBS_8");
        assert_eq!(SchedulerKind::Mix(4).name(), "MIX_4");
        assert_eq!(SchedulerKind::Mios.batch_window(), None);
        assert_eq!(SchedulerKind::Mibs(8).batch_window(), Some(8));
    }

    #[test]
    fn display_name_matches_built_scheduler_name() {
        // The allocation-free Display-based name must agree with what the
        // boxed scheduler reports about itself, for every kind.
        let mut kinds = vec![
            SchedulerKind::Fifo,
            SchedulerKind::Mios,
            SchedulerKind::Mibs(8),
            SchedulerKind::Mix(4),
        ];
        for v in MibsVariant::ALL {
            kinds.push(SchedulerKind::Ablation(v, 8));
        }
        for kind in kinds {
            assert_eq!(kind.name(), kind.build().name(), "{kind:?}");
        }
    }

    #[derive(Default)]
    struct Counting {
        arrivals: usize,
        refusals: usize,
        placements: usize,
        completions: usize,
        dispatches: usize,
    }

    impl SimObserver for Counting {
        fn on_arrival(&mut self, _info: &ArrivalInfo) {
            self.arrivals += 1;
        }
        fn on_refusal(&mut self, _info: &ArrivalInfo) {
            self.refusals += 1;
        }
        fn on_dispatch(&mut self, _time: f64, _n: usize) {
            self.dispatches += 1;
        }
        fn on_placement(&mut self, _info: &PlacementInfo) {
            self.placements += 1;
        }
        fn on_completion(&mut self, _info: &CompletionInfo) {
            self.completions += 1;
        }
    }

    #[test]
    fn observer_hooks_agree_with_result_totals() {
        let tb = shared();
        let trace = static_batch(12, WorkloadMix::Medium, 13);
        let mut obs = Counting::default();
        let r = Simulation::new(tb, 4, SchedulerKind::Mibs(8))
            .run_with_observer(&trace, None, &mut obs);
        assert_eq!(obs.arrivals, r.arrived);
        assert_eq!(obs.completions, r.completed);
        assert_eq!(obs.placements, r.completed, "static run places all tasks");
        assert_eq!(obs.refusals, r.refused);
        assert!(obs.dispatches > 0);
    }

    #[test]
    fn empty_fault_plan_is_bit_identical_to_no_plan() {
        use crate::faults::FaultPlan;
        let tb = shared();
        let plan = FaultPlan::none();
        for kind in [
            SchedulerKind::Fifo,
            SchedulerKind::Mios,
            SchedulerKind::Mibs(8),
        ] {
            let trace = poisson_trace(30.0, 900.0, WorkloadMix::Medium, 17);
            let plain = Simulation::new(tb, 4, kind).run(&trace, Some(1800.0));
            let faulted = Simulation::new(tb, 4, kind)
                .with_faults(&plan)
                .run(&trace, Some(1800.0));
            assert_eq!(plain.completed, faulted.completed, "{kind:?}");
            assert_eq!(
                plain.total_runtime.to_bits(),
                faulted.total_runtime.to_bits(),
                "{kind:?}"
            );
            assert_eq!(
                plain.total_iops.to_bits(),
                faulted.total_iops.to_bits(),
                "{kind:?}"
            );
            assert_eq!(plain.mean_wait.to_bits(), faulted.mean_wait.to_bits());
            assert_eq!(faulted.machine_crashes, 0);
            assert_eq!(faulted.requeues, 0);
            assert_eq!(faulted.abandoned, 0);
        }
    }

    #[test]
    fn faulted_run_is_deterministic() {
        use crate::faults::{FaultConfig, FaultPlan};
        let tb = shared();
        let plan = FaultPlan::generate(
            FaultConfig {
                machine_mttf_s: 300.0,
                machine_mttr_s: 60.0,
                ..FaultConfig::default()
            },
            4,
            1800.0,
            5,
        );
        let trace = poisson_trace(40.0, 900.0, WorkloadMix::Medium, 23);
        let a = Simulation::new(tb, 4, SchedulerKind::Mibs(8))
            .with_faults(&plan)
            .run(&trace, Some(1800.0));
        let b = Simulation::new(tb, 4, SchedulerKind::Mibs(8))
            .with_faults(&plan)
            .run(&trace, Some(1800.0));
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.total_runtime.to_bits(), b.total_runtime.to_bits());
        assert_eq!(a.machine_crashes, b.machine_crashes);
        assert_eq!(a.requeues, b.requeues);
        assert_eq!(a.task_failures, b.task_failures);
        assert!(a.machine_crashes > 0, "plan must actually crash machines");
    }

    #[test]
    fn crashes_requeue_and_conservation_holds() {
        use crate::faults::{FaultConfig, FaultPlan};
        let tb = shared();
        // Aggressive churn on a small cluster so evictions are certain.
        let plan = FaultPlan::generate(
            FaultConfig {
                machine_mttf_s: 120.0,
                machine_mttr_s: 30.0,
                task_fail_prob: 0.1,
                max_attempts: 3,
                straggler_prob: 0.2,
                straggler_slowdown: 2.0,
            },
            4,
            7200.0,
            2,
        );
        let trace = poisson_trace(60.0, 1800.0, WorkloadMix::Medium, 8);
        let mut crash_hooks = 0usize;
        let mut recover_hooks = 0usize;
        let mut failure_hooks = 0usize;
        struct Hooks<'a>(&'a mut usize, &'a mut usize, &'a mut usize);
        impl SimObserver for Hooks<'_> {
            fn on_machine_crash(&mut self, _info: &MachineCrashInfo) {
                *self.0 += 1;
            }
            fn on_machine_recover(&mut self, _time: f64, _machine: usize) {
                *self.1 += 1;
            }
            fn on_task_failure(&mut self, _info: &TaskFailureInfo) {
                *self.2 += 1;
            }
        }
        let r = Simulation::new(tb, 4, SchedulerKind::Mios)
            .with_faults(&plan)
            .run_with_observer(
                &trace,
                None,
                &mut Hooks(&mut crash_hooks, &mut recover_hooks, &mut failure_hooks),
            );
        assert!(r.machine_crashes > 0, "{r:?}");
        assert!(r.requeues > 0, "{r:?}");
        assert_eq!(r.machine_crashes, crash_hooks);
        assert_eq!(r.machine_recoveries, recover_hooks);
        assert_eq!(r.task_failures, failure_hooks);
        // Conservation: every arrival is completed, refused, abandoned,
        // or still in the system (unfinished is non-negative by
        // construction; check it exactly bounds the remainder).
        assert_eq!(
            r.arrived,
            r.completed + r.refused + r.abandoned + r.unfinished()
        );
        // Run to completion with recoveries in the plan: nothing should
        // be left unfinished unless every machine ended down.
        assert!(
            r.unfinished() == 0 || r.completed > 0,
            "run(None) must make progress: {r:?}"
        );
    }

    #[test]
    fn event_at_exact_horizon_is_processed() {
        // The kernel breaks on `now > horizon`: an event at exactly
        // t == horizon is processed, one epsilon later is not.
        let tb = shared();
        let h = 100.0;
        let trace = vec![
            ArrivalEvent {
                time: h,
                app_idx: 0,
            },
            ArrivalEvent {
                time: h + 1e-3,
                app_idx: 0,
            },
        ];
        let mut obs = Counting::default();
        let r = Simulation::new(tb, 2, SchedulerKind::Fifo).run_with_observer(
            &trace,
            Some(h),
            &mut obs,
        );
        assert_eq!(obs.arrivals, 1, "arrival at t == horizon must be admitted");
        assert_eq!(r.arrived, 2, "arrived counts the whole trace");
        assert_eq!(r.completed, 0, "its completion falls past the horizon");
    }

    #[test]
    fn reference_machine_classes_are_bit_identical() {
        // A homogeneous reference-class configuration — and a capacitated
        // unit-factor class with zero per-I/O traffic — must replay the
        // legacy scenarios bit-for-bit: the class gate skips reference
        // classes entirely, and a non-reference class at zero demand
        // multiplies and divides by exactly 1.0.
        use tracon_core::MachineClass;
        let tb = shared();
        let trace = static_batch(16, WorkloadMix::Medium, 71);
        let unit = MachineClassConfig {
            classes: vec![MachineClass::remote("unit", 1.0, 1.0, 80.0)],
            assignment: vec![0; 8],
            kb_per_io: 0.0,
        };
        for kind in [SchedulerKind::Fifo, SchedulerKind::Mibs(8)] {
            let plain = Simulation::new(tb, 8, kind).run(&trace, None);
            let homog = Simulation::new(tb, 8, kind)
                .with_machine_classes(MachineClassConfig::homogeneous(8))
                .run(&trace, None);
            let zero = Simulation::new(tb, 8, kind)
                .with_machine_classes(unit.clone())
                .run(&trace, None);
            for r in [&homog, &zero] {
                assert_eq!(plain.completed, r.completed, "{kind:?}");
                assert_eq!(
                    plain.total_runtime.to_bits(),
                    r.total_runtime.to_bits(),
                    "{kind:?}"
                );
                assert_eq!(
                    plain.total_iops.to_bits(),
                    r.total_iops.to_bits(),
                    "{kind:?}"
                );
                assert_eq!(plain.mean_wait.to_bits(), r.mean_wait.to_bits(), "{kind:?}");
            }
        }
    }

    #[test]
    fn remote_classes_slow_the_cluster_down() {
        use tracon_core::MachineClass;
        let tb = shared();
        let trace = static_batch(16, WorkloadMix::Heavy, 73);
        let plain = Simulation::new(tb, 8, SchedulerKind::Fifo).run(&trace, None);
        let slow = Simulation::new(tb, 8, SchedulerKind::Fifo)
            .with_machine_classes(MachineClassConfig {
                classes: vec![MachineClass::remote("iscsi", 2.0, 0.5, 60.0)],
                assignment: vec![0; 8],
                kb_per_io: 64.0,
            })
            .run(&trace, None);
        assert_eq!(slow.completed, 16);
        assert!(
            slow.total_runtime > plain.total_runtime * 1.5,
            "remote-storage cluster must pay the class penalty: {} vs {}",
            slow.total_runtime,
            plain.total_runtime
        );
        assert!(
            slow.total_iops < plain.total_iops,
            "remote class halves served IOPS: {} vs {}",
            slow.total_iops,
            plain.total_iops
        );
    }

    #[test]
    fn heterogeneous_runs_are_deterministic_and_oblivious_differs() {
        use tracon_core::MachineClass;
        let tb = shared();
        let cfg = MachineClassConfig::mixed(8, MachineClass::remote("iscsi", 2.0, 0.5, 60.0), 64.0);
        let trace = static_batch(24, WorkloadMix::Medium, 77);
        let aware = Simulation::new(tb, 8, SchedulerKind::Mibs(24))
            .with_machine_classes(cfg.clone())
            .run(&trace, None);
        let aware2 = Simulation::new(tb, 8, SchedulerKind::Mibs(24))
            .with_machine_classes(cfg.clone())
            .run(&trace, None);
        let oblivious = Simulation::new(tb, 8, SchedulerKind::Mibs(24))
            .with_machine_classes(cfg)
            .with_network_oblivious_scoring()
            .run(&trace, None);
        assert_eq!(aware.completed, 24);
        assert_eq!(oblivious.completed, 24);
        assert_eq!(
            aware.total_runtime.to_bits(),
            aware2.total_runtime.to_bits()
        );
        // The oblivious scheduler cannot see the class split, so on a
        // mixed cluster its placements — and hence realized runtimes —
        // must differ from the aware ones.
        assert!(
            (aware.total_runtime - oblivious.total_runtime).abs() > 1e-9,
            "class-aware scoring should change placements on a mixed cluster"
        );
    }
}
