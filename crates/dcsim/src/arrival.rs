//! Workload generation for the data-center simulation: the paper's
//! light / medium / heavy I/O mixes (Gaussian over the eight IOPS-ranked
//! benchmarks with means 2.5 / 4.0 / 5.5) and Poisson arrival processes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tracon_stats::dist;
use tracon_vmsim::Benchmark;

/// The paper's workload mixes (Section 4.1, "Mixed I/O workload").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadMix {
    /// Gaussian over ranks with mean 2.5 — mostly low-IOPS applications.
    Light,
    /// Gaussian over ranks with mean 4.0.
    Medium,
    /// Gaussian over ranks with mean 5.5 — mostly high-IOPS applications.
    Heavy,
    /// Uniform over the eight benchmarks (used in Fig 4).
    Uniform,
}

/// Standard deviation of the Gaussian rank sampler. Tight enough that
/// the heavy mix is dominated by mutually-destructive I/O applications
/// (the paper: "almost all combinations in this workload likely severely
/// interfere with each other").
pub const MIX_STD_DEV: f64 = 1.2;

impl WorkloadMix {
    /// Mean rank of the Gaussian sampler (`None` for uniform).
    pub fn mean_rank(&self) -> Option<f64> {
        match self {
            WorkloadMix::Light => Some(2.5),
            WorkloadMix::Medium => Some(4.0),
            WorkloadMix::Heavy => Some(5.5),
            WorkloadMix::Uniform => None,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadMix::Light => "light",
            WorkloadMix::Medium => "medium",
            WorkloadMix::Heavy => "heavy",
            WorkloadMix::Uniform => "uniform",
        }
    }

    /// The three I/O-intensity mixes of Figs 8-12.
    pub const INTENSITY_MIXES: [WorkloadMix; 3] =
        [WorkloadMix::Light, WorkloadMix::Medium, WorkloadMix::Heavy];

    /// Samples a benchmark according to the mix.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Benchmark {
        match self.mean_rank() {
            Some(mean) => {
                let rank = dist::gaussian_rank(rng, mean, MIX_STD_DEV, 8);
                Benchmark::from_io_rank(rank)
            }
            None => Benchmark::ALL[rng.gen_range(0..Benchmark::ALL.len())],
        }
    }
}

/// A generated task arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalEvent {
    /// Arrival time, seconds.
    pub time: f64,
    /// Index of the application in [`Benchmark::ALL`] order.
    pub app_idx: usize,
}

/// Generates a Poisson arrival trace: `lambda_per_min` tasks per minute
/// for `duration_s` seconds, applications drawn from `mix`.
pub fn poisson_trace(
    lambda_per_min: f64,
    duration_s: f64,
    mix: WorkloadMix,
    seed: u64,
) -> Vec<ArrivalEvent> {
    assert!(lambda_per_min > 0.0, "lambda must be positive");
    assert!(duration_s > 0.0, "duration must be positive");
    let rate_per_s = lambda_per_min / 60.0;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    let mut out = Vec::with_capacity((rate_per_s * duration_s * 1.1) as usize + 16);
    loop {
        t += dist::exponential(&mut rng, rate_per_s);
        if t >= duration_s {
            break;
        }
        let app = mix.sample(&mut rng);
        out.push(ArrivalEvent {
            time: t,
            app_idx: app.io_rank() - 1,
        });
    }
    out
}

/// Generates a Poisson trace with exactly `n` arrivals at
/// `lambda_per_min` tasks per minute. Unlike [`poisson_trace`] the run
/// length is fixed in tasks rather than in simulated time, which is what
/// a load generator driving a live daemon wants: "send 500 requests at
/// this rate" regardless of how long that takes.
pub fn poisson_n(lambda_per_min: f64, n: usize, mix: WorkloadMix, seed: u64) -> Vec<ArrivalEvent> {
    assert!(lambda_per_min > 0.0, "lambda must be positive");
    let rate_per_s = lambda_per_min / 60.0;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    (0..n)
        .map(|_| {
            t += dist::exponential(&mut rng, rate_per_s);
            let app = mix.sample(&mut rng);
            ArrivalEvent {
                time: t,
                app_idx: app.io_rank() - 1,
            }
        })
        .collect()
}

/// Generates a static batch of `n` tasks (all present at t = 0).
pub fn static_batch(n: usize, mix: WorkloadMix, seed: u64) -> Vec<ArrivalEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| ArrivalEvent {
            time: 0.0,
            app_idx: mix.sample(&mut rng).io_rank() - 1,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracon_stats::mean;

    #[test]
    fn mixes_have_ordered_mean_ranks() {
        let mut rng = StdRng::seed_from_u64(1);
        let avg_rank = |mix: WorkloadMix, rng: &mut StdRng| {
            let xs: Vec<f64> = (0..5000)
                .map(|_| mix.sample(rng).io_rank() as f64)
                .collect();
            mean(&xs)
        };
        let light = avg_rank(WorkloadMix::Light, &mut rng);
        let medium = avg_rank(WorkloadMix::Medium, &mut rng);
        let heavy = avg_rank(WorkloadMix::Heavy, &mut rng);
        let uniform = avg_rank(WorkloadMix::Uniform, &mut rng);
        assert!(light < medium && medium < heavy, "{light} {medium} {heavy}");
        assert!((uniform - 4.5).abs() < 0.2, "uniform mean rank = {uniform}");
    }

    #[test]
    fn poisson_trace_rate_and_ordering() {
        let trace = poisson_trace(60.0, 3600.0, WorkloadMix::Medium, 2);
        // 60 tasks/min for an hour: ~3600 arrivals.
        assert!(
            (trace.len() as f64 - 3600.0).abs() < 250.0,
            "n = {}",
            trace.len()
        );
        assert!(trace.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(trace.iter().all(|a| a.time < 3600.0 && a.app_idx < 8));
    }

    #[test]
    fn static_batch_size_and_time() {
        let batch = static_batch(32, WorkloadMix::Uniform, 3);
        assert_eq!(batch.len(), 32);
        assert!(batch.iter().all(|a| a.time == 0.0));
    }

    #[test]
    fn poisson_n_yields_exact_count_at_requested_rate() {
        let trace = poisson_n(120.0, 400, WorkloadMix::Medium, 11);
        assert_eq!(trace.len(), 400);
        assert!(trace.windows(2).all(|w| w[0].time <= w[1].time));
        // 120/min = 2/s: 400 arrivals should span roughly 200 s.
        let span = trace.last().unwrap().time;
        assert!((span - 200.0).abs() < 60.0, "span = {span}");
        assert_eq!(trace, poisson_n(120.0, 400, WorkloadMix::Medium, 11));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = poisson_trace(10.0, 600.0, WorkloadMix::Light, 7);
        let b = poisson_trace(10.0, 600.0, WorkloadMix::Light, 7);
        assert_eq!(a, b);
        let c = poisson_trace(10.0, 600.0, WorkloadMix::Light, 8);
        assert_ne!(a, c);
    }
}
