//! Regenerates the golden `SimResult` fingerprints pinned by the
//! workspace test `tests/golden_engine.rs`.
//!
//! ```text
//! cargo run --release -p tracon-dcsim --example golden_gen
//! ```
//!
//! Paste the emitted array over `GOLDEN` in the test whenever the engine
//! is *intentionally* changed in a behaviour-visible way. The fixtures
//! cover a static batch and a Poisson trace, every [`SchedulerKind`], and
//! both objectives, so any accidental change to event ordering, progress
//! rescaling, or dispatch triggering shows up as a bit-level mismatch.

use tracon_core::{MibsVariant, Objective};
use tracon_dcsim::arrival::{poisson_trace, static_batch, WorkloadMix};
use tracon_dcsim::{SchedulerKind, Simulation, Testbed, TestbedConfig};

/// Every scheduler kind the simulator accepts (window 8 for the batchers).
pub fn all_kinds() -> Vec<SchedulerKind> {
    let mut kinds = vec![
        SchedulerKind::Fifo,
        SchedulerKind::Mios,
        SchedulerKind::Mibs(8),
        SchedulerKind::Mix(8),
    ];
    kinds.extend(MibsVariant::ALL.map(|v| SchedulerKind::Ablation(v, 8)));
    kinds
}

fn main() {
    let tb = Testbed::build(&TestbedConfig::small());
    let mut rows = Vec::new();
    for &(scenario, machines) in &[("static", 6usize), ("poisson", 4usize)] {
        let (trace, horizon) = match scenario {
            "static" => (static_batch(24, WorkloadMix::Medium, 7), None),
            _ => (
                poisson_trace(40.0, 1800.0, WorkloadMix::Uniform, 11),
                Some(1800.0),
            ),
        };
        for kind in all_kinds() {
            for objective in [Objective::MinRuntime, Objective::MaxIops] {
                let r = Simulation::new(&tb, machines, kind)
                    .with_objective(objective)
                    .run(&trace, horizon);
                rows.push(format!(
                    "    (\"{scenario}\", \"{}\", \"{}\", {}, {}, {:#018x}, {:#018x}, {:#018x}, {:#018x}),",
                    r.scheduler,
                    objective.suffix(),
                    r.completed,
                    r.refused,
                    r.total_runtime.to_bits(),
                    r.total_iops.to_bits(),
                    r.makespan.to_bits(),
                    r.mean_wait.to_bits(),
                ));
            }
        }
    }
    println!("const GOLDEN: &[GoldenRow] = &[");
    for row in rows {
        println!("{row}");
    }
    println!("];");
}
