//! Equivalence proof for the interned hot path: a string-keyed reference
//! implementation of the scheduling stack — the pre-interning design,
//! with `"+"`-joined neighbour-class keys and name-keyed memoized scoring
//! — must produce byte-identical assignment streams to the shipped
//! `AppId`/lookup-table schedulers on random task mixes.
//!
//! The reference deliberately re-derives everything from application
//! *names*: class keys are sorted names joined with `'+'` (the idle class
//! is the empty string), free slots live in a `BTreeMap<String, _>`, and
//! scores are memoized per (name, class-string) through the predictor's
//! string API. Id assignment is lexicographic and packed class keys order
//! like the joined strings, so every tie-break must coincide — down to
//! the f64 bit pattern of each predicted score.

use proptest::prelude::*;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use tracon::core::characteristics::N_JOINT;
use tracon::core::{
    AppModelSet, AppProfile, Assignment, Characteristics, ClusterState, Fifo, InterferenceModel,
    Mibs, Mios, Mix, ModelKind, Objective, Predictor, Scheduler, ScoringPolicy, Task, VmRef,
};

/// Deterministic synthetic interference model (same shape as the
/// scheduling-invariants fixture).
struct SynthModel {
    base: f64,
}

impl InterferenceModel for SynthModel {
    fn predict(&self, f: &[f64; N_JOINT]) -> f64 {
        self.base + 0.01 * f[0] * f[4] + 20.0 * f[2] * f[6] + 0.05 * f[1] * f[5]
    }
    fn kind(&self) -> ModelKind {
        ModelKind::Nonlinear
    }
    fn n_terms(&self) -> usize {
        3
    }
}

fn world(n_apps: usize) -> (Predictor, HashMap<String, Characteristics>) {
    let mut predictor = Predictor::new();
    let mut chars = HashMap::new();
    for i in 0..n_apps {
        let name = format!("app{i}");
        let c = Characteristics::new(
            20.0 + 40.0 * i as f64,
            3.0 * i as f64,
            0.1 + 0.8 * (i as f64 / n_apps.max(1) as f64),
            0.02 * i as f64,
        );
        predictor.add_app(
            AppProfile {
                name: name.clone(),
                solo: c,
                solo_runtime: 120.0,
                solo_iops: (c.total_rps()).max(1.0),
            },
            AppModelSet {
                runtime: Box::new(SynthModel { base: 120.0 }),
                iops: Box::new(SynthModel { base: 10.0 }),
            },
        );
        chars.insert(name, c);
    }
    (predictor, chars)
}

// ---------------------------------------------------------------------
// The string-keyed reference implementation (pre-interning behaviour).
// ---------------------------------------------------------------------

#[derive(Clone)]
struct RefTask {
    id: u64,
    app: String,
}

#[derive(Clone)]
struct RefAssignment {
    task_id: u64,
    vm: VmRef,
    predicted_score: f64,
}

struct RefClass {
    key: String,
    background: Characteristics,
    example: VmRef,
}

struct RefCluster {
    slots_per_machine: usize,
    machines: Vec<Vec<Option<RefTask>>>,
    chars: HashMap<String, Characteristics>,
    /// Free slots keyed by the sorted `'+'`-joined neighbour names; the
    /// idle class is the empty string (which sorts first, like the packed
    /// idle key).
    free: BTreeMap<String, BTreeSet<VmRef>>,
}

impl RefCluster {
    fn new(
        n_machines: usize,
        slots_per_machine: usize,
        chars: HashMap<String, Characteristics>,
    ) -> Self {
        let mut free: BTreeMap<String, BTreeSet<VmRef>> = BTreeMap::new();
        free.insert(
            String::new(),
            (0..n_machines)
                .flat_map(|m| {
                    (0..slots_per_machine).map(move |s| VmRef {
                        machine: m,
                        slot: s,
                    })
                })
                .collect(),
        );
        RefCluster {
            slots_per_machine,
            machines: vec![vec![None; slots_per_machine]; n_machines],
            chars,
            free,
        }
    }

    fn class_key(&self, machine: usize, slot: usize) -> String {
        let mut names: Vec<&str> = self.machines[machine]
            .iter()
            .enumerate()
            .filter(|(s, r)| *s != slot && r.is_some())
            .map(|(_, r)| r.as_ref().unwrap().app.as_str())
            .collect();
        names.sort_unstable();
        names.join("+")
    }

    fn background_of(&self, vm: VmRef) -> Characteristics {
        let mut bg = Characteristics::idle();
        for (s, r) in self.machines[vm.machine].iter().enumerate() {
            if s == vm.slot {
                continue;
            }
            if let Some(res) = r {
                bg = bg.combine(&self.chars[&res.app]);
            }
        }
        bg
    }

    fn n_free(&self) -> usize {
        self.free.values().map(|s| s.len()).sum()
    }

    fn free_classes(&self) -> Vec<RefClass> {
        self.free
            .iter()
            .filter(|(_, slots)| !slots.is_empty())
            .map(|(key, slots)| {
                let example = *slots.iter().next().unwrap();
                RefClass {
                    key: key.clone(),
                    background: self.background_of(example),
                    example,
                }
            })
            .collect()
    }

    fn first_free(&self) -> Option<VmRef> {
        self.free.values().flat_map(|s| s.iter()).min().copied()
    }

    fn remove_free(&mut self, vm: VmRef) {
        let key = self.class_key(vm.machine, vm.slot);
        if let Some(set) = self.free.get_mut(&key) {
            set.remove(&vm);
            if set.is_empty() {
                self.free.remove(&key);
            }
        }
    }

    fn add_free(&mut self, vm: VmRef) {
        let key = self.class_key(vm.machine, vm.slot);
        self.free.entry(key).or_default().insert(vm);
    }

    fn detach_free_siblings(&mut self, machine: usize, changed_slot: usize) {
        for s in 0..self.slots_per_machine {
            if s != changed_slot && self.machines[machine][s].is_none() {
                self.remove_free(VmRef { machine, slot: s });
            }
        }
    }

    fn attach_free_siblings(&mut self, machine: usize, changed_slot: usize) {
        for s in 0..self.slots_per_machine {
            if s != changed_slot && self.machines[machine][s].is_none() {
                self.add_free(VmRef { machine, slot: s });
            }
        }
    }

    fn place(&mut self, vm: VmRef, task: RefTask) {
        assert!(self.machines[vm.machine][vm.slot].is_none());
        self.remove_free(vm);
        self.detach_free_siblings(vm.machine, vm.slot);
        self.machines[vm.machine][vm.slot] = Some(task);
        self.attach_free_siblings(vm.machine, vm.slot);
    }

    fn clear(&mut self, vm: VmRef) {
        assert!(self.machines[vm.machine][vm.slot].is_some());
        self.detach_free_siblings(vm.machine, vm.slot);
        self.machines[vm.machine][vm.slot] = None;
        self.add_free(vm);
        self.attach_free_siblings(vm.machine, vm.slot);
    }
}

/// String-keyed scoring with per-(name, class) memoization — the legacy
/// `RefCell<HashMap>` design the lookup tables replaced.
struct RefScoring<'a> {
    predictor: &'a Predictor,
    objective: Objective,
    cache: RefCell<HashMap<(String, String), f64>>,
}

impl<'a> RefScoring<'a> {
    fn new(predictor: &'a Predictor, objective: Objective) -> Self {
        RefScoring {
            predictor,
            objective,
            cache: RefCell::new(HashMap::new()),
        }
    }

    fn raw_score(&self, app: &str, background: &Characteristics) -> f64 {
        match self.objective {
            Objective::MinRuntime => self.predictor.predict_runtime(app, background),
            Objective::MaxIops => -self.predictor.predict_iops(app, background),
        }
    }

    fn score(&self, app: &str, key: &str, background: &Characteristics) -> f64 {
        let cache_key = (app.to_string(), key.to_string());
        if let Some(&v) = self.cache.borrow().get(&cache_key) {
            return v;
        }
        let v = self.raw_score(app, background);
        self.cache.borrow_mut().insert(cache_key, v);
        v
    }

    fn solo_score(&self, app: &str) -> f64 {
        self.raw_score(app, &Characteristics::idle())
    }

    fn excess_score(&self, app: &str, key: &str, background: &Characteristics) -> f64 {
        self.score(app, key, background) - self.solo_score(app)
    }

    fn pair_score(&self, app: &str, other: &str) -> f64 {
        match self.objective {
            Objective::MinRuntime => {
                let a = self.predictor.predict_pair_runtime(app, other)
                    - self.predictor.profile(app).solo_runtime;
                let b = self.predictor.predict_pair_runtime(other, app)
                    - self.predictor.profile(other).solo_runtime;
                a + b
            }
            Objective::MaxIops => {
                let a = self.predictor.profile(app).solo_iops
                    - self.predictor.predict_pair_iops(app, other);
                let b = self.predictor.profile(other).solo_iops
                    - self.predictor.predict_pair_iops(other, app);
                a + b
            }
        }
    }
}

fn ref_place_best(
    task: RefTask,
    cluster: &mut RefCluster,
    scoring: &RefScoring<'_>,
) -> Option<RefAssignment> {
    let mut best: Option<(f64, VmRef)> = None;
    for class in cluster.free_classes() {
        let score = scoring.score(&task.app, &class.key, &class.background);
        if best.is_none_or(|(b, _)| score < b) {
            best = Some((score, class.example));
        }
    }
    let (score, vm) = best?;
    let id = task.id;
    cluster.place(vm, task);
    Some(RefAssignment {
        task_id: id,
        vm,
        predicted_score: score,
    })
}

fn ref_fifo(
    queue: &mut VecDeque<RefTask>,
    cluster: &mut RefCluster,
    scoring: &RefScoring<'_>,
) -> Vec<RefAssignment> {
    let mut out = Vec::new();
    while let Some(vm) = cluster.first_free() {
        let Some(task) = queue.pop_front() else { break };
        let key = cluster.class_key(vm.machine, vm.slot);
        let bg = cluster.background_of(vm);
        let predicted_score = scoring.score(&task.app, &key, &bg);
        let id = task.id;
        cluster.place(vm, task);
        out.push(RefAssignment {
            task_id: id,
            vm,
            predicted_score,
        });
    }
    out
}

fn ref_mios(
    queue: &mut VecDeque<RefTask>,
    cluster: &mut RefCluster,
    scoring: &RefScoring<'_>,
) -> Vec<RefAssignment> {
    let mut out = Vec::new();
    while cluster.n_free() > 0 {
        let Some(task) = queue.pop_front() else { break };
        match ref_place_best(task, cluster, scoring) {
            Some(a) => out.push(a),
            None => break,
        }
    }
    out
}

fn ref_mibs(
    queue: &mut VecDeque<RefTask>,
    cluster: &mut RefCluster,
    scoring: &RefScoring<'_>,
) -> Vec<RefAssignment> {
    const TIE_EPS: f64 = 1e-9;
    let mut out = Vec::new();
    let mut window: Vec<RefTask> = queue.drain(..).collect();
    while !window.is_empty() && cluster.n_free() > 0 {
        let classes = cluster.free_classes();
        let mut best: Option<((f64, f64, usize), usize, usize)> = None;
        for (ti, t) in window.iter().enumerate() {
            let fragility = scoring.pair_score(&t.app, &t.app);
            for (ci, c) in classes.iter().enumerate() {
                let excess = scoring.excess_score(&t.app, &c.key, &c.background);
                let tie = if c.key.is_empty() {
                    -fragility
                } else {
                    f64::INFINITY
                };
                let key = (excess, tie, ti);
                let better = match &best {
                    None => true,
                    Some((bk, _, _)) => {
                        key.0 < bk.0 - TIE_EPS
                            || ((key.0 - bk.0).abs() <= TIE_EPS && (key.1, key.2) < (bk.1, bk.2))
                    }
                };
                if better {
                    best = Some((key, ti, ci));
                }
            }
        }
        let Some((_, ti, ci)) = best else { break };
        let task = window.swap_remove(ti);
        let class = &classes[ci];
        let score = scoring.score(&task.app, &class.key, &class.background);
        let vm = class.example;
        let id = task.id;
        cluster.place(vm, task);
        out.push(RefAssignment {
            task_id: id,
            vm,
            predicted_score: score,
        });
    }
    queue.extend(window);
    out
}

fn ref_mix(
    queue: &mut VecDeque<RefTask>,
    cluster: &mut RefCluster,
    scoring: &RefScoring<'_>,
) -> Vec<RefAssignment> {
    if queue.is_empty() || cluster.n_free() == 0 {
        return Vec::new();
    }
    let tasks: Vec<RefTask> = queue.iter().cloned().collect();
    let total = |v: &[RefAssignment]| -> f64 { v.iter().map(|a| a.predicted_score).sum() };
    let mut best: Option<(f64, Vec<RefAssignment>)> = None;
    for head in 0..tasks.len() {
        let Some(first) = ref_place_best(tasks[head].clone(), cluster, scoring) else {
            continue;
        };
        let mut placed = vec![first];
        let mut rest: VecDeque<RefTask> = tasks
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != head)
            .map(|(_, t)| t.clone())
            .collect();
        placed.extend(ref_mibs(&mut rest, cluster, scoring));
        for a in placed.iter().rev() {
            cluster.clear(a.vm);
        }
        let score = total(&placed);
        let better = match &best {
            None => true,
            Some((best_score, best_assignments)) => {
                placed.len() > best_assignments.len()
                    || (placed.len() == best_assignments.len() && score < *best_score)
            }
        };
        if better {
            best = Some((score, placed));
        }
    }
    let Some((_, assignments)) = best else {
        return Vec::new();
    };
    let by_id: HashMap<u64, &RefTask> = tasks.iter().map(|t| (t.id, t)).collect();
    for a in &assignments {
        cluster.place(a.vm, by_id[&a.task_id].clone());
    }
    let assigned_ids: HashSet<u64> = assignments.iter().map(|a| a.task_id).collect();
    queue.retain(|t| !assigned_ids.contains(&t.id));
    assignments
}

// ---------------------------------------------------------------------
// The comparison harness.
// ---------------------------------------------------------------------

fn assert_streams_equal(kind: &str, real: &[Assignment], reference: &[RefAssignment]) {
    assert_eq!(
        real.len(),
        reference.len(),
        "{kind}: placement counts differ"
    );
    for (a, b) in real.iter().zip(reference) {
        assert_eq!(a.task.id, b.task_id, "{kind}: task order differs");
        assert_eq!(
            a.vm, b.vm,
            "{kind}: slot choice differs for task {}",
            b.task_id
        );
        assert_eq!(
            a.predicted_score.to_bits(),
            b.predicted_score.to_bits(),
            "{kind}: score bits differ for task {} ({} vs {})",
            b.task_id,
            a.predicted_score,
            b.predicted_score
        );
    }
}

fn check_all_schedulers(
    n_machines: usize,
    slots: usize,
    n_apps: usize,
    picks: &[usize],
    objective: Objective,
) {
    let (predictor, chars) = world(n_apps);
    let registry = {
        let c = ClusterState::new(n_machines, slots, chars.clone());
        c.registry().clone()
    };
    let names: Vec<String> = picks.iter().map(|p| format!("app{}", p % n_apps)).collect();

    type RefSched =
        fn(&mut VecDeque<RefTask>, &mut RefCluster, &RefScoring<'_>) -> Vec<RefAssignment>;
    let window = picks.len().max(1);
    let cases: Vec<(&str, Box<dyn Scheduler>, RefSched)> = vec![
        ("FIFO", Box::new(Fifo), ref_fifo as RefSched),
        ("MIOS", Box::new(Mios), ref_mios as RefSched),
        ("MIBS", Box::new(Mibs::new(window)), ref_mibs as RefSched),
        ("MIX", Box::new(Mix::new(window)), ref_mix as RefSched),
    ];

    for (kind, mut real_sched, ref_sched) in cases {
        let scoring = ScoringPolicy::new(&predictor, objective);
        let mut cluster = ClusterState::new(n_machines, slots, chars.clone());
        let mut queue: VecDeque<Task> = names
            .iter()
            .enumerate()
            .map(|(i, n)| Task::new(i as u64, registry.expect_id(n)))
            .collect();
        let real = real_sched.schedule(&mut queue, &mut cluster, &scoring);

        let ref_scoring = RefScoring::new(&predictor, objective);
        let mut ref_cluster = RefCluster::new(n_machines, slots, chars.clone());
        let mut ref_queue: VecDeque<RefTask> = names
            .iter()
            .enumerate()
            .map(|(i, n)| RefTask {
                id: i as u64,
                app: n.clone(),
            })
            .collect();
        let reference = ref_sched(&mut ref_queue, &mut ref_cluster, &ref_scoring);

        assert_streams_equal(kind, &real, &reference);
        // Leftover queues must agree too (same ids, same order).
        let real_left: Vec<u64> = queue.iter().map(|t| t.id).collect();
        let ref_left: Vec<u64> = ref_queue.iter().map(|t| t.id).collect();
        assert_eq!(real_left, ref_left, "{kind}: leftover queues differ");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The interned schedulers reproduce the string-keyed reference
    /// byte-for-byte on random mixes, cluster shapes, and objectives.
    #[test]
    fn interned_schedulers_match_string_reference(
        n_machines in 1usize..7,
        n_apps in 1usize..6,
        objective_io in any::<bool>(),
        picks in proptest::collection::vec(0usize..6, 0..16),
    ) {
        let objective =
            if objective_io { Objective::MaxIops } else { Objective::MinRuntime };
        check_all_schedulers(n_machines, 2, n_apps, &picks, objective);
    }

    /// Same equivalence with three slots per machine, which exercises the
    /// multi-neighbour (two-resident) class keys and the locked fallback
    /// path of the score table.
    #[test]
    fn interned_schedulers_match_reference_three_slots(
        n_machines in 1usize..4,
        n_apps in 1usize..4,
        picks in proptest::collection::vec(0usize..4, 0..10),
    ) {
        check_all_schedulers(n_machines, 3, n_apps, &picks, Objective::MinRuntime);
    }
}
