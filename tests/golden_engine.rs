//! Golden-equivalence tests for the event-kernel / observer split: the
//! observer layer must be a pure tap on the kernel, so instrumenting a
//! run can never change its outcome, and the kernel itself must be
//! bit-deterministic. The fixture matrix covers a static batch and a
//! Poisson trace, every [`SchedulerKind`], and both objectives — any
//! accidental change to event ordering, progress rescaling, or dispatch
//! triggering shows up as a bit-level mismatch.

use std::sync::OnceLock;
use tracon::core::{MibsVariant, Objective};
use tracon::dcsim::arrival::{poisson_trace, static_batch, ArrivalEvent, WorkloadMix};
use tracon::dcsim::engine::{ArrivalInfo, CompletionInfo, PlacementInfo, SimObserver};
use tracon::dcsim::{QueueBackend, SchedulerKind, SimResult, Simulation, Testbed, TestbedConfig};

/// `(scenario, scheduler, objective, completed, refused, total_runtime,
/// total_iops, makespan, mean_wait)` — float fields as raw bits.
type GoldenRow = (
    &'static str,
    &'static str,
    &'static str,
    usize,
    usize,
    u64,
    u64,
    u64,
    u64,
);

/// Pinned fingerprints. Empty means "not pinned on this checkout": the
/// equivalence assertions below still run in full. To pin the current
/// engine behaviour, paste the output of
/// `cargo run --release -p tracon-dcsim --example golden_gen` here;
/// regenerate whenever the engine is *intentionally* changed in a
/// behaviour-visible way.
const GOLDEN: &[GoldenRow] = &[];

fn testbed() -> &'static Testbed {
    static TB: OnceLock<Testbed> = OnceLock::new();
    TB.get_or_init(|| Testbed::build(&TestbedConfig::small()))
}

/// Every scheduler kind the simulator accepts (window 8 for the
/// batchers), mirroring `golden_gen`.
fn all_kinds() -> Vec<SchedulerKind> {
    let mut kinds = vec![
        SchedulerKind::Fifo,
        SchedulerKind::Mios,
        SchedulerKind::Mibs(8),
        SchedulerKind::Mix(8),
    ];
    kinds.extend(MibsVariant::ALL.map(|v| SchedulerKind::Ablation(v, 8)));
    kinds
}

/// The fixture scenarios, mirroring `golden_gen`.
fn scenarios() -> Vec<(&'static str, usize, Vec<ArrivalEvent>, Option<f64>)> {
    vec![
        ("static", 6, static_batch(24, WorkloadMix::Medium, 7), None),
        (
            "poisson",
            4,
            poisson_trace(40.0, 1800.0, WorkloadMix::Uniform, 11),
            Some(1800.0),
        ),
    ]
}

fn fingerprint(r: &SimResult) -> (usize, usize, u64, u64, u64, u64) {
    (
        r.completed,
        r.refused,
        r.total_runtime.to_bits(),
        r.total_iops.to_bits(),
        r.makespan.to_bits(),
        r.mean_wait.to_bits(),
    )
}

/// An observer that exercises every hook (so the instrumented code path
/// is fully live) without feeding anything back into the kernel.
#[derive(Default)]
struct Counting {
    arrivals: usize,
    refusals: usize,
    placements: usize,
    completions: usize,
    dispatched: usize,
}

impl SimObserver for Counting {
    fn on_arrival(&mut self, _info: &ArrivalInfo) {
        self.arrivals += 1;
    }
    fn on_refusal(&mut self, _info: &ArrivalInfo) {
        self.refusals += 1;
    }
    fn on_dispatch(&mut self, _time: f64, n_assigned: usize) {
        self.dispatched += n_assigned;
    }
    fn on_placement(&mut self, _info: &PlacementInfo) {
        self.placements += 1;
    }
    fn on_completion(&mut self, _info: &CompletionInfo) {
        self.completions += 1;
    }
}

#[test]
fn observed_runs_match_bare_runs_bit_for_bit() {
    let tb = testbed();
    for (scenario, machines, trace, horizon) in scenarios() {
        for kind in all_kinds() {
            for objective in [Objective::MinRuntime, Objective::MaxIops] {
                let sim = Simulation::new(tb, machines, kind).with_objective(objective);
                let bare = sim.run(&trace, horizon);
                let mut obs = Counting::default();
                let tapped = sim.run_with_observer(&trace, horizon, &mut obs);
                let ctx = format!("{scenario}/{}/{}", bare.scheduler, objective.suffix());
                assert_eq!(
                    fingerprint(&bare),
                    fingerprint(&tapped),
                    "observer tap perturbed the run: {ctx}"
                );
                assert_eq!(obs.completions, tapped.completed, "{ctx}");
                assert_eq!(obs.refusals, tapped.refused, "{ctx}");
                assert_eq!(
                    obs.arrivals + obs.refusals,
                    tapped.arrived,
                    "every trace arrival is admitted or refused: {ctx}"
                );
                assert_eq!(
                    obs.dispatched, obs.placements,
                    "every dispatched assignment becomes a placement: {ctx}"
                );
                assert!(obs.placements >= obs.completions, "{ctx}");
            }
        }
    }
}

/// An observer that records the full decision streams of a run:
/// placements and completions with every field reduced to raw bits, so
/// two runs compare byte-for-byte.
#[derive(Default)]
struct Recording {
    /// `(time, machine, slot, task_id, app_idx, neighbor_at_start, wait)`.
    placements: Vec<(u64, usize, usize, u64, usize, usize, u64)>,
    /// `(time, machine, slot, app_idx, runtime, avg_iops)`.
    completions: Vec<(u64, usize, usize, usize, u64, u64)>,
}

impl SimObserver for Recording {
    fn on_placement(&mut self, info: &PlacementInfo) {
        self.placements.push((
            info.time.to_bits(),
            info.vm.machine,
            info.vm.slot,
            info.task_id,
            info.app_idx,
            info.neighbor_at_start,
            info.wait.to_bits(),
        ));
    }
    fn on_completion(&mut self, info: &CompletionInfo) {
        self.completions.push((
            info.time.to_bits(),
            info.vm.machine,
            info.vm.slot,
            info.app_idx,
            info.runtime.to_bits(),
            info.avg_iops.to_bits(),
        ));
    }
}

/// The tentpole gate for the timing-wheel kernel: over the full 32-row
/// matrix (2 scenarios x 8 scheduler kinds x 2 objectives) the wheel and
/// the reference binary heap must produce byte-identical placement and
/// completion streams — the optimization is not allowed to change a
/// single scheduling decision.
#[test]
fn timing_wheel_matches_binary_heap_bit_for_bit() {
    let tb = testbed();
    let mut rows = 0;
    for (scenario, machines, trace, horizon) in scenarios() {
        for kind in all_kinds() {
            for objective in [Objective::MinRuntime, Objective::MaxIops] {
                let mut heap_obs = Recording::default();
                let heap = Simulation::new(tb, machines, kind)
                    .with_objective(objective)
                    .with_queue_backend(QueueBackend::BinaryHeap)
                    .run_with_observer(&trace, horizon, &mut heap_obs);
                let mut wheel_obs = Recording::default();
                let wheel = Simulation::new(tb, machines, kind)
                    .with_objective(objective)
                    .with_queue_backend(QueueBackend::TimingWheel)
                    .run_with_observer(&trace, horizon, &mut wheel_obs);
                let ctx = format!("{scenario}/{}/{}", heap.scheduler, objective.suffix());
                assert_eq!(
                    heap_obs.placements, wheel_obs.placements,
                    "placement streams diverged: {ctx}"
                );
                assert_eq!(
                    heap_obs.completions, wheel_obs.completions,
                    "completion streams diverged: {ctx}"
                );
                assert_eq!(fingerprint(&heap), fingerprint(&wheel), "{ctx}");
                assert_eq!(
                    heap.events_processed, wheel.events_processed,
                    "kernel event counts diverged: {ctx}"
                );
                rows += 1;
            }
        }
    }
    assert_eq!(rows, 32, "the golden matrix must cover all 32 rows");
}

#[test]
fn engine_fingerprints_are_reproducible_and_match_pins() {
    let tb = testbed();
    for (scenario, machines, trace, horizon) in scenarios() {
        for kind in all_kinds() {
            for objective in [Objective::MinRuntime, Objective::MaxIops] {
                let sim = Simulation::new(tb, machines, kind).with_objective(objective);
                let a = sim.run(&trace, horizon);
                let b = sim.run(&trace, horizon);
                let ctx = format!("{scenario}/{}/{}", a.scheduler, objective.suffix());
                assert_eq!(
                    fingerprint(&a),
                    fingerprint(&b),
                    "kernel not deterministic: {ctx}"
                );
                if let Some(row) = GOLDEN
                    .iter()
                    .find(|g| g.0 == scenario && g.1 == a.scheduler && g.2 == objective.suffix())
                {
                    assert_eq!(
                        (a.completed, a.refused),
                        (row.3, row.4),
                        "pinned counts drifted: {ctx}"
                    );
                    assert_eq!(
                        (
                            a.total_runtime.to_bits(),
                            a.total_iops.to_bits(),
                            a.makespan.to_bits(),
                            a.mean_wait.to_bits()
                        ),
                        (row.5, row.6, row.7, row.8),
                        "pinned totals drifted: {ctx}"
                    );
                }
            }
        }
    }
}
