//! Golden-equivalence tests for the event-kernel / observer split: the
//! observer layer must be a pure tap on the kernel, so instrumenting a
//! run can never change its outcome, and the kernel itself must be
//! bit-deterministic. The fixture matrix covers a static batch and a
//! Poisson trace, every [`SchedulerKind`], and both objectives — any
//! accidental change to event ordering, progress rescaling, or dispatch
//! triggering shows up as a bit-level mismatch.

use proptest::prelude::*;
use std::sync::OnceLock;
use tracon::core::{MachineClass, MibsVariant, Objective};
use tracon::dcsim::arrival::{poisson_trace, static_batch, ArrivalEvent, WorkloadMix};
use tracon::dcsim::engine::{ArrivalInfo, CompletionInfo, PlacementInfo, SimObserver};
use tracon::dcsim::{
    MachineClassConfig, QueueBackend, SchedulerKind, SimResult, Simulation, Testbed, TestbedConfig,
};

/// `(scenario, scheduler, objective, completed, refused, total_runtime,
/// total_iops, makespan, mean_wait)` — float fields as raw bits.
type GoldenRow = (
    &'static str,
    &'static str,
    &'static str,
    usize,
    usize,
    u64,
    u64,
    u64,
    u64,
);

/// Pinned fingerprints. Empty means "not pinned on this checkout": the
/// equivalence assertions below still run in full. To pin the current
/// engine behaviour, paste the output of
/// `cargo run --release -p tracon-dcsim --example golden_gen` here;
/// regenerate whenever the engine is *intentionally* changed in a
/// behaviour-visible way.
const GOLDEN: &[GoldenRow] = &[];

fn testbed() -> &'static Testbed {
    static TB: OnceLock<Testbed> = OnceLock::new();
    TB.get_or_init(|| Testbed::build(&TestbedConfig::small()))
}

/// Every scheduler kind the simulator accepts (window 8 for the
/// batchers), mirroring `golden_gen`.
fn all_kinds() -> Vec<SchedulerKind> {
    let mut kinds = vec![
        SchedulerKind::Fifo,
        SchedulerKind::Mios,
        SchedulerKind::Mibs(8),
        SchedulerKind::Mix(8),
    ];
    kinds.extend(MibsVariant::ALL.map(|v| SchedulerKind::Ablation(v, 8)));
    kinds
}

/// The fixture scenarios, mirroring `golden_gen`.
fn scenarios() -> Vec<(&'static str, usize, Vec<ArrivalEvent>, Option<f64>)> {
    vec![
        ("static", 6, static_batch(24, WorkloadMix::Medium, 7), None),
        (
            "poisson",
            4,
            poisson_trace(40.0, 1800.0, WorkloadMix::Uniform, 11),
            Some(1800.0),
        ),
    ]
}

fn fingerprint(r: &SimResult) -> (usize, usize, u64, u64, u64, u64) {
    (
        r.completed,
        r.refused,
        r.total_runtime.to_bits(),
        r.total_iops.to_bits(),
        r.makespan.to_bits(),
        r.mean_wait.to_bits(),
    )
}

/// An observer that exercises every hook (so the instrumented code path
/// is fully live) without feeding anything back into the kernel.
#[derive(Default)]
struct Counting {
    arrivals: usize,
    refusals: usize,
    placements: usize,
    completions: usize,
    dispatched: usize,
}

impl SimObserver for Counting {
    fn on_arrival(&mut self, _info: &ArrivalInfo) {
        self.arrivals += 1;
    }
    fn on_refusal(&mut self, _info: &ArrivalInfo) {
        self.refusals += 1;
    }
    fn on_dispatch(&mut self, _time: f64, n_assigned: usize) {
        self.dispatched += n_assigned;
    }
    fn on_placement(&mut self, _info: &PlacementInfo) {
        self.placements += 1;
    }
    fn on_completion(&mut self, _info: &CompletionInfo) {
        self.completions += 1;
    }
}

#[test]
fn observed_runs_match_bare_runs_bit_for_bit() {
    let tb = testbed();
    for (scenario, machines, trace, horizon) in scenarios() {
        for kind in all_kinds() {
            for objective in [Objective::MinRuntime, Objective::MaxIops] {
                let sim = Simulation::new(tb, machines, kind).with_objective(objective);
                let bare = sim.run(&trace, horizon);
                let mut obs = Counting::default();
                let tapped = sim.run_with_observer(&trace, horizon, &mut obs);
                let ctx = format!("{scenario}/{}/{}", bare.scheduler, objective.suffix());
                assert_eq!(
                    fingerprint(&bare),
                    fingerprint(&tapped),
                    "observer tap perturbed the run: {ctx}"
                );
                assert_eq!(obs.completions, tapped.completed, "{ctx}");
                assert_eq!(obs.refusals, tapped.refused, "{ctx}");
                assert_eq!(
                    obs.arrivals + obs.refusals,
                    tapped.arrived,
                    "every trace arrival is admitted or refused: {ctx}"
                );
                assert_eq!(
                    obs.dispatched, obs.placements,
                    "every dispatched assignment becomes a placement: {ctx}"
                );
                assert!(obs.placements >= obs.completions, "{ctx}");
            }
        }
    }
}

/// An observer that records the full decision streams of a run:
/// placements and completions with every field reduced to raw bits, so
/// two runs compare byte-for-byte.
#[derive(Default)]
struct Recording {
    /// `(time, machine, slot, task_id, app_idx, neighbor_at_start, wait)`.
    placements: Vec<(u64, usize, usize, u64, usize, usize, u64)>,
    /// `(time, machine, slot, app_idx, runtime, avg_iops)`.
    completions: Vec<(u64, usize, usize, usize, u64, u64)>,
}

impl SimObserver for Recording {
    fn on_placement(&mut self, info: &PlacementInfo) {
        self.placements.push((
            info.time.to_bits(),
            info.vm.machine,
            info.vm.slot,
            info.task_id,
            info.app_idx,
            info.neighbor_at_start,
            info.wait.to_bits(),
        ));
    }
    fn on_completion(&mut self, info: &CompletionInfo) {
        self.completions.push((
            info.time.to_bits(),
            info.vm.machine,
            info.vm.slot,
            info.app_idx,
            info.runtime.to_bits(),
            info.avg_iops.to_bits(),
        ));
    }
}

/// The tentpole gate for the timing-wheel kernel: over the full 32-row
/// matrix (2 scenarios x 8 scheduler kinds x 2 objectives) the wheel and
/// the reference binary heap must produce byte-identical placement and
/// completion streams — the optimization is not allowed to change a
/// single scheduling decision.
#[test]
fn timing_wheel_matches_binary_heap_bit_for_bit() {
    let tb = testbed();
    let mut rows = 0;
    for (scenario, machines, trace, horizon) in scenarios() {
        for kind in all_kinds() {
            for objective in [Objective::MinRuntime, Objective::MaxIops] {
                let mut heap_obs = Recording::default();
                let heap = Simulation::new(tb, machines, kind)
                    .with_objective(objective)
                    .with_queue_backend(QueueBackend::BinaryHeap)
                    .run_with_observer(&trace, horizon, &mut heap_obs);
                let mut wheel_obs = Recording::default();
                let wheel = Simulation::new(tb, machines, kind)
                    .with_objective(objective)
                    .with_queue_backend(QueueBackend::TimingWheel)
                    .run_with_observer(&trace, horizon, &mut wheel_obs);
                let ctx = format!("{scenario}/{}/{}", heap.scheduler, objective.suffix());
                assert_eq!(
                    heap_obs.placements, wheel_obs.placements,
                    "placement streams diverged: {ctx}"
                );
                assert_eq!(
                    heap_obs.completions, wheel_obs.completions,
                    "completion streams diverged: {ctx}"
                );
                assert_eq!(fingerprint(&heap), fingerprint(&wheel), "{ctx}");
                assert_eq!(
                    heap.events_processed, wheel.events_processed,
                    "kernel event counts diverged: {ctx}"
                );
                rows += 1;
            }
        }
    }
    assert_eq!(rows, 32, "the golden matrix must cover all 32 rows");
}

/// The gate for the multi-axis resource API: with only the two legacy
/// dimensions in play, routing every scenario through the machine-class
/// machinery must not move a single bit. Two reference shapes are
/// checked per matrix row — an explicit all-reference (homogeneous)
/// class table, and a *non*-reference unit-factor class with a finite
/// link capacity but zero offered demand (`kb_per_io = 0`), which
/// exercises the capacity math at the identity point.
#[test]
fn ndim_reference_classes_match_legacy_bit_for_bit() {
    let tb = testbed();
    let mut rows = 0;
    for (scenario, machines, trace, horizon) in scenarios() {
        let homogeneous = MachineClassConfig::homogeneous(machines);
        let unit = MachineClassConfig {
            classes: vec![MachineClass::remote("unit", 1.0, 1.0, 80.0)],
            assignment: vec![0; machines],
            kb_per_io: 0.0,
        };
        for kind in all_kinds() {
            for objective in [Objective::MinRuntime, Objective::MaxIops] {
                let mut plain_obs = Recording::default();
                let plain = Simulation::new(tb, machines, kind)
                    .with_objective(objective)
                    .run_with_observer(&trace, horizon, &mut plain_obs);
                let ctx = format!("{scenario}/{}/{}", plain.scheduler, objective.suffix());
                for (label, cfg) in [("homogeneous", &homogeneous), ("unit-factor", &unit)] {
                    let mut classed_obs = Recording::default();
                    let classed = Simulation::new(tb, machines, kind)
                        .with_objective(objective)
                        .with_machine_classes(cfg.clone())
                        .run_with_observer(&trace, horizon, &mut classed_obs);
                    assert_eq!(
                        plain_obs.placements, classed_obs.placements,
                        "{label} classes changed a placement: {ctx}"
                    );
                    assert_eq!(
                        plain_obs.completions, classed_obs.completions,
                        "{label} classes changed a completion: {ctx}"
                    );
                    assert_eq!(
                        fingerprint(&plain),
                        fingerprint(&classed),
                        "{label} classes moved the fingerprint: {ctx}"
                    );
                }
                rows += 1;
            }
        }
    }
    assert_eq!(rows, 32, "the N-dim matrix must cover all 32 rows");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A network dimension with zero offered demand is inert: whatever
    /// the cluster shape, scheduler, objective, or link capacity, a
    /// uniform unit-factor class with `kb_per_io = 0` never changes a
    /// placement or completion decision. (The table must be uniform —
    /// a *mixed* assignment refines the free-slot equivalence classes
    /// by design, which can legitimately re-break score ties.)
    #[test]
    fn zero_demand_network_dimension_never_changes_placements(
        machines in 2usize..7,
        batch in 8usize..32,
        seed in 0u64..1000,
        kind_idx in 0usize..8,
        capacity in 10.0f64..500.0,
        maximize_iops in any::<bool>(),
    ) {
        let tb = testbed();
        let trace = static_batch(batch, WorkloadMix::Medium, seed);
        let kind = all_kinds()[kind_idx];
        let objective = if maximize_iops {
            Objective::MaxIops
        } else {
            Objective::MinRuntime
        };
        let cfg = MachineClassConfig {
            classes: vec![MachineClass::remote("idle-link", 1.0, 1.0, capacity)],
            assignment: vec![0; machines],
            kb_per_io: 0.0,
        };
        let mut plain_obs = Recording::default();
        let plain = Simulation::new(tb, machines, kind)
            .with_objective(objective)
            .run_with_observer(&trace, None, &mut plain_obs);
        let mut classed_obs = Recording::default();
        let classed = Simulation::new(tb, machines, kind)
            .with_objective(objective)
            .with_machine_classes(cfg)
            .run_with_observer(&trace, None, &mut classed_obs);
        prop_assert_eq!(plain_obs.placements, classed_obs.placements);
        prop_assert_eq!(plain_obs.completions, classed_obs.completions);
        prop_assert_eq!(fingerprint(&plain), fingerprint(&classed));
    }
}

#[test]
fn engine_fingerprints_are_reproducible_and_match_pins() {
    let tb = testbed();
    for (scenario, machines, trace, horizon) in scenarios() {
        for kind in all_kinds() {
            for objective in [Objective::MinRuntime, Objective::MaxIops] {
                let sim = Simulation::new(tb, machines, kind).with_objective(objective);
                let a = sim.run(&trace, horizon);
                let b = sim.run(&trace, horizon);
                let ctx = format!("{scenario}/{}/{}", a.scheduler, objective.suffix());
                assert_eq!(
                    fingerprint(&a),
                    fingerprint(&b),
                    "kernel not deterministic: {ctx}"
                );
                if let Some(row) = GOLDEN
                    .iter()
                    .find(|g| g.0 == scenario && g.1 == a.scheduler && g.2 == objective.suffix())
                {
                    assert_eq!(
                        (a.completed, a.refused),
                        (row.3, row.4),
                        "pinned counts drifted: {ctx}"
                    );
                    assert_eq!(
                        (
                            a.total_runtime.to_bits(),
                            a.total_iops.to_bits(),
                            a.makespan.to_bits(),
                            a.mean_wait.to_bits()
                        ),
                        (row.5, row.6, row.7, row.8),
                        "pinned totals drifted: {ctx}"
                    );
                }
            }
        }
    }
}
