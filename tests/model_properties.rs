//! Property-based tests of the model layer: whatever the training data,
//! the trained models and the predictor must satisfy the invariants the
//! schedulers rely on.

use proptest::prelude::*;
use tracon::core::{
    train_model_scaled, AppModelSet, AppProfile, Characteristics, ClassKey, ModelKind, Objective,
    Predictor, ResponseScale, ScoringPolicy, TrainingData,
};

fn arbitrary_training_data() -> impl Strategy<Value = TrainingData> {
    proptest::collection::vec(
        (proptest::collection::vec(0.0f64..300.0, 8), 20.0f64..2000.0),
        12..60,
    )
    .prop_map(|rows| {
        let mut d = TrainingData::default();
        for (f, y) in rows {
            let arr: [f64; 8] = std::array::from_fn(|i| f[i]);
            d.push(arr, y);
        }
        d
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every model family trains on arbitrary (positive-response) data
    /// and produces finite predictions on its own training rows.
    #[test]
    fn models_train_and_predict_finite(data in arbitrary_training_data()) {
        for kind in [ModelKind::Wmm, ModelKind::Linear, ModelKind::Nonlinear] {
            for scale in [ResponseScale::Linear, ResponseScale::Reciprocal] {
                let m = train_model_scaled(kind, &data, scale);
                for f in &data.features {
                    let y = m.predict(f);
                    prop_assert!(
                        y.is_finite(),
                        "{:?}/{:?} produced {y}",
                        kind,
                        scale
                    );
                    if scale == ResponseScale::Reciprocal {
                        prop_assert!(y >= 0.0, "reciprocal-scale prediction negative: {y}");
                    }
                }
            }
        }
    }

    /// The predictor's clamps hold for arbitrary neighbour
    /// characteristics: runtime in [solo, 30 x solo], IOPS in
    /// [0, solo_iops].
    #[test]
    fn predictor_clamps_hold(
        data in arbitrary_training_data(),
        bg in proptest::collection::vec(0.0f64..500.0, 4),
        solo_runtime in 10.0f64..1000.0,
        solo_iops in 1.0f64..500.0,
    ) {
        let mut p = Predictor::new();
        let runtime = train_model_scaled(ModelKind::Nonlinear, &data, ResponseScale::Linear);
        let iops = train_model_scaled(ModelKind::Nonlinear, &data, ResponseScale::Reciprocal);
        p.add_app(
            AppProfile {
                name: "app".into(),
                solo: Characteristics::new(50.0, 10.0, 0.5, 0.05),
                solo_runtime,
                solo_iops,
            },
            AppModelSet { runtime, iops },
        );
        let nb = Characteristics::new(bg[0], bg[1], (bg[2] / 500.0).min(1.0), (bg[3] / 500.0).min(1.0));
        let rt = p.predict_runtime("app", &nb);
        prop_assert!(rt >= solo_runtime - 1e-9);
        prop_assert!(rt <= 30.0 * solo_runtime + 1e-9);
        let io = p.predict_iops("app", &nb);
        prop_assert!((0.0..=solo_iops + 1e-9).contains(&io));
    }

    /// Scoring-policy invariants: the excess is bounded by the clamp
    /// window (with arbitrary, structure-free training data the model may
    /// legitimately rank idle above a neighbour, so excess >= 0 is only a
    /// property of monotone-interference models, not of the machinery),
    /// and the memoized score equals the recomputed one.
    #[test]
    fn scoring_policy_invariants(
        data in arbitrary_training_data(),
        bg in proptest::collection::vec(0.0f64..300.0, 4),
    ) {
        let mut p = Predictor::new();
        let runtime = train_model_scaled(ModelKind::Nonlinear, &data, ResponseScale::Linear);
        let iops = train_model_scaled(ModelKind::Nonlinear, &data, ResponseScale::Reciprocal);
        p.add_app(
            AppProfile {
                name: "app".into(),
                solo: Characteristics::new(80.0, 20.0, 0.6, 0.08),
                solo_runtime: 100.0,
                solo_iops: 100.0,
            },
            AppModelSet { runtime, iops },
        );
        // Register the neighbour too, so its id can name the slot class.
        let nb_runtime = train_model_scaled(ModelKind::Nonlinear, &data, ResponseScale::Linear);
        let nb_iops = train_model_scaled(ModelKind::Nonlinear, &data, ResponseScale::Reciprocal);
        p.add_app(
            AppProfile {
                name: "nb".into(),
                solo: Characteristics::new(60.0, 15.0, 0.4, 0.06),
                solo_runtime: 100.0,
                solo_iops: 100.0,
            },
            AppModelSet { runtime: nb_runtime, iops: nb_iops },
        );
        let scoring = ScoringPolicy::new(&p, Objective::MinRuntime);
        let app = p.registry().expect_id("app");
        let key = ClassKey::from_neighbours([p.registry().expect_id("nb")]);
        let nb = Characteristics::new(bg[0], bg[1], (bg[2] / 300.0).min(1.0), (bg[3] / 300.0).min(1.0));
        let excess = scoring.excess_score(app, key, &nb);
        prop_assert!(excess.is_finite());
        // Both scores live in [solo, 30 x solo], so the excess is bounded.
        prop_assert!((-29.0 * 100.0 - 1e-6..=29.0 * 100.0 + 1e-6).contains(&excess));
        // Memoization returns the same value.
        let s1 = scoring.score(app, key, &nb);
        let s2 = scoring.score(app, key, &nb);
        prop_assert_eq!(s1.to_bits(), s2.to_bits());
    }
}
