//! Property-based tests of the statistics substrate: the invariants every
//! downstream component (models, schedulers, simulator) relies on.

use proptest::prelude::*;
use tracon::stats::{
    aicc_gaussian, dist, lstsq, mean, percentile, std_dev, stepwise_aic, sym_eigen, Matrix, Pca,
    Scaler, StepwiseOptions, Welford,
};
use tracon::vmsim::cpu::fair_share;

fn finite_vec(
    len: std::ops::Range<usize>,
    range: std::ops::Range<f64>,
) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(range, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// fair_share: allocations never exceed demand or capacity, and the
    /// allocator is work-conserving (either everyone is satisfied or the
    /// capacity is fully used).
    #[test]
    fn fair_share_properties(
        capacity in 0.0f64..8.0,
        demands in finite_vec(1..8, 0.0..3.0),
    ) {
        let weights = vec![1.0; demands.len()];
        let alloc = fair_share(capacity, &demands, &weights);
        let total: f64 = alloc.iter().sum();
        prop_assert!(total <= capacity + 1e-9);
        let mut all_satisfied = true;
        for (a, d) in alloc.iter().zip(&demands) {
            prop_assert!(*a >= -1e-12);
            prop_assert!(*a <= d + 1e-9);
            if *a < d - 1e-9 {
                all_satisfied = false;
            }
        }
        let demand_total: f64 = demands.iter().sum();
        if !all_satisfied {
            // Overload: capacity must be exhausted (work conservation).
            prop_assert!(total >= capacity.min(demand_total) - 1e-6);
        }
    }

    /// Equal unsatisfied demands receive equal fair shares.
    #[test]
    fn fair_share_symmetry(capacity in 0.1f64..2.0, demand in 1.0f64..4.0, n in 2usize..6) {
        let demands = vec![demand; n];
        let weights = vec![1.0; n];
        let alloc = fair_share(capacity, &demands, &weights);
        for w in alloc.windows(2) {
            prop_assert!((w[0] - w[1]).abs() < 1e-9);
        }
    }

    /// Least squares: the fitted prediction error never exceeds what the
    /// zero vector achieves (optimality sanity), and residuals are finite.
    #[test]
    fn lstsq_never_worse_than_zero(
        rows in proptest::collection::vec(
            proptest::collection::vec(-5.0f64..5.0, 3),
            4..20
        ),
        coefs in proptest::collection::vec(-3.0f64..3.0, 3),
    ) {
        let a = Matrix::from_rows(&rows);
        let y: Vec<f64> = rows
            .iter()
            .map(|r| r.iter().zip(&coefs).map(|(x, c)| x * c).sum::<f64>())
            .collect();
        let x = lstsq(&a, &y).unwrap();
        let pred = a.matvec(&x);
        let sse: f64 = pred.iter().zip(&y).map(|(p, q)| (p - q) * (p - q)).sum();
        let sse_zero: f64 = y.iter().map(|v| v * v).sum();
        prop_assert!(sse.is_finite());
        prop_assert!(sse <= sse_zero + 1e-6);
    }

    /// Symmetric eigendecomposition preserves the trace and produces
    /// sorted eigenvalues.
    #[test]
    fn eigen_trace_and_order(vals in proptest::collection::vec(-4.0f64..4.0, 6)) {
        // Build a symmetric matrix from a random one.
        let n = 3;
        let mut m = Matrix::zeros(n, n);
        let mut k = 0;
        for i in 0..n {
            for j in i..n {
                m[(i, j)] = vals[k];
                m[(j, i)] = vals[k];
                k += 1;
            }
        }
        let e = sym_eigen(&m);
        let trace: f64 = (0..n).map(|i| m[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-8);
        for w in e.values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-10);
        }
    }

    /// Full-rank PCA preserves pairwise distances of the z-scores.
    #[test]
    fn pca_isometry(
        rows in proptest::collection::vec(
            proptest::collection::vec(-10.0f64..10.0, 4),
            5..30
        ),
    ) {
        let pca = Pca::fit(&rows, 4);
        let sc = Scaler::fit(&rows);
        let a = &rows[0];
        let b = rows.last().unwrap();
        let dz = tracon::stats::euclidean_distance(&sc.transform(a), &sc.transform(b));
        let dp = tracon::stats::euclidean_distance(&pca.project(a), &pca.project(b));
        prop_assert!((dz - dp).abs() < 1e-6 * (1.0 + dz));
    }

    /// Percentiles are monotone in p and bounded by the sample extremes.
    #[test]
    fn percentile_monotone(xs in finite_vec(1..40, -100.0..100.0)) {
        let p25 = percentile(&xs, 25.0);
        let p50 = percentile(&xs, 50.0);
        let p75 = percentile(&xs, 75.0);
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p25 <= p50 + 1e-12 && p50 <= p75 + 1e-12);
        prop_assert!(p25 >= lo - 1e-12 && p75 <= hi + 1e-12);
    }

    /// Welford matches the batch statistics on any sample.
    #[test]
    fn welford_matches_batch(xs in finite_vec(2..50, -1e3..1e3)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        prop_assert!((w.mean() - mean(&xs)).abs() < 1e-6 * (1.0 + mean(&xs).abs()));
        prop_assert!((w.std_dev() - std_dev(&xs)).abs() < 1e-6 * (1.0 + std_dev(&xs)));
    }

    /// AICc is always at least AIC and diverges near saturation.
    #[test]
    fn aicc_dominates_aic(sse in 0.1f64..100.0, n in 10usize..100, k in 0usize..6) {
        let aic = tracon::stats::aic_gaussian(sse, n, k);
        let aicc = aicc_gaussian(sse, n, k);
        prop_assert!(aicc >= aic - 1e-12);
    }

    /// Stepwise selection never returns more terms than allowed and its
    /// predictions are finite on training rows.
    #[test]
    fn stepwise_bounded_and_finite(
        rows in proptest::collection::vec(
            proptest::collection::vec(-2.0f64..2.0, 5),
            12..40
        ),
        max_terms in 1usize..5,
    ) {
        let y: Vec<f64> = rows.iter().map(|r| 1.0 + r[0] - 2.0 * r[3]).collect();
        let x = Matrix::from_rows(&rows);
        let fit = stepwise_aic(&x, &y, StepwiseOptions { max_terms, max_steps: 50 });
        prop_assert!(fit.selected.len() <= max_terms);
        for r in &rows {
            prop_assert!(fit.predict(r).is_finite());
        }
    }

    /// Poisson sampling is non-negative and roughly mean-lambda on
    /// aggregate (loose bound; the tight test lives in the unit suite).
    #[test]
    fn poisson_sane(lambda in 0.0f64..50.0, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let xs: Vec<f64> = (0..200).map(|_| dist::poisson(&mut rng, lambda) as f64).collect();
        let m = mean(&xs);
        prop_assert!(xs.iter().all(|&x| x >= 0.0));
        prop_assert!((m - lambda).abs() < 1.5 + lambda * 0.5);
    }
}
