//! Property-based tests of the scheduling layer: whatever the task mix,
//! cluster shape, and objective, the schedulers must produce structurally
//! valid assignments and the cluster state must stay consistent.

use proptest::prelude::*;
use std::collections::{HashMap, HashSet, VecDeque};
use tracon::core::characteristics::N_JOINT;
use tracon::core::{
    AppModelSet, AppProfile, AppRegistry, Characteristics, ClusterState, Fifo, InterferenceModel,
    Mibs, Mios, Mix, ModelKind, Objective, Predictor, Resident, Scheduler, ScoringPolicy, Task,
    VmRef,
};

/// Deterministic synthetic interference model.
struct SynthModel {
    base: f64,
}

impl InterferenceModel for SynthModel {
    fn predict(&self, f: &[f64; N_JOINT]) -> f64 {
        self.base + 0.01 * f[0] * f[4] + 20.0 * f[2] * f[6] + 0.05 * f[1] * f[5]
    }
    fn kind(&self) -> ModelKind {
        ModelKind::Nonlinear
    }
    fn n_terms(&self) -> usize {
        3
    }
}

fn world(n_apps: usize) -> (Predictor, HashMap<String, Characteristics>) {
    let mut predictor = Predictor::new();
    let mut chars = HashMap::new();
    for i in 0..n_apps {
        let name = format!("app{i}");
        let c = Characteristics::new(
            20.0 + 40.0 * i as f64,
            3.0 * i as f64,
            0.1 + 0.8 * (i as f64 / n_apps.max(1) as f64),
            0.02 * i as f64,
        );
        predictor.add_app(
            AppProfile {
                name: name.clone(),
                solo: c,
                solo_runtime: 120.0,
                solo_iops: (c.total_rps()).max(1.0),
            },
            AppModelSet {
                runtime: Box::new(SynthModel { base: 120.0 }),
                iops: Box::new(SynthModel { base: 10.0 }),
            },
        );
        chars.insert(name, c);
    }
    (predictor, chars)
}

fn scheduler_strategy() -> impl Strategy<Value = usize> {
    0usize..4
}

fn build_scheduler(idx: usize, window: usize) -> Box<dyn Scheduler> {
    match idx {
        0 => Box::new(Fifo),
        1 => Box::new(Mios),
        2 => Box::new(Mibs::new(window)),
        _ => Box::new(Mix::new(window)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every scheduler: no slot double-booked, assignments within bounds,
    /// placed + leftover == submitted, and the cluster's free count drops
    /// by exactly the number of assignments.
    #[test]
    fn assignments_are_structurally_valid(
        sched_idx in scheduler_strategy(),
        n_machines in 1usize..12,
        n_tasks in 0usize..40,
        n_apps in 1usize..6,
        objective_io in any::<bool>(),
        app_picks in proptest::collection::vec(0usize..6, 0..40),
    ) {
        let (predictor, chars) = world(n_apps);
        let objective =
            if objective_io { Objective::MaxIops } else { Objective::MinRuntime };
        let scoring = ScoringPolicy::new(&predictor, objective);
        let mut cluster = ClusterState::new(n_machines, 2, chars);
        let registry = cluster.registry().clone();
        let free_before = cluster.n_free();
        let mut queue: VecDeque<Task> = (0..n_tasks)
            .map(|i| {
                let app = app_picks.get(i).copied().unwrap_or(0) % n_apps;
                Task::new(i as u64, registry.expect_id(&format!("app{app}")))
            })
            .collect();
        let submitted = queue.len();

        let mut scheduler = build_scheduler(sched_idx, submitted.max(1));
        let out = scheduler.schedule(&mut queue, &mut cluster, &scoring);

        // Structural validity.
        let mut seen_slots = HashSet::new();
        let mut seen_tasks = HashSet::new();
        for a in &out {
            prop_assert!(a.vm.machine < n_machines);
            prop_assert!(a.vm.slot < 2);
            prop_assert!(seen_slots.insert(a.vm), "slot double-booked: {:?}", a.vm);
            prop_assert!(seen_tasks.insert(a.task.id), "task scheduled twice");
            prop_assert!(a.predicted_score.is_finite());
            // The cluster actually holds the resident.
            let r = cluster.resident(a.vm).expect("assigned slot must be occupied");
            prop_assert_eq!(r.task_id, a.task.id);
        }
        // Conservation.
        prop_assert_eq!(out.len() + queue.len(), submitted);
        prop_assert_eq!(cluster.n_free(), free_before - out.len());
        // Work conservation: tasks remain queued only when the cluster
        // filled up.
        if !queue.is_empty() {
            prop_assert_eq!(cluster.n_free(), 0, "tasks queued while slots free");
        }
    }

    /// Cluster state stays consistent under arbitrary place/clear
    /// sequences: free-class counts always sum to the free-slot count and
    /// every key matches its members' neighbour sets.
    #[test]
    fn cluster_state_is_consistent(
        n_machines in 1usize..8,
        ops in proptest::collection::vec((0usize..16, any::<bool>(), 0usize..4), 0..60),
    ) {
        let (_, chars) = world(4);
        let mut cluster = ClusterState::new(n_machines, 2, chars);
        let registry = cluster.registry().clone();
        let n_slots = cluster.n_slots();
        for (raw, place, app) in ops {
            let slot_idx = raw % n_slots;
            let vm = VmRef { machine: slot_idx / 2, slot: slot_idx % 2 };
            if place && cluster.resident(vm).is_none() {
                let app_id = registry.expect_id(&format!("app{app}"));
                cluster.place(vm, Resident { task_id: raw as u64, app: app_id });
            } else if !place && cluster.resident(vm).is_some() {
                cluster.clear(vm);
            }
            let class_total: usize = cluster.free_classes().iter().map(|c| c.count).sum();
            prop_assert_eq!(class_total, cluster.n_free());
            let occupied = cluster.occupied().count();
            prop_assert_eq!(occupied + cluster.n_free(), n_slots);
        }
    }

    /// MIX never produces a worse total predicted score than MIBS on the
    /// same inputs (it evaluates MIBS's plan among its candidates).
    #[test]
    fn mix_no_worse_than_mibs(
        n_machines in 1usize..6,
        picks in proptest::collection::vec(0usize..4, 1..12),
    ) {
        let (predictor, chars) = world(4);
        let scoring = ScoringPolicy::new(&predictor, Objective::MinRuntime);
        let registry = AppRegistry::from_names(chars.keys().cloned());
        let tasks: Vec<Task> = picks
            .iter()
            .enumerate()
            .map(|(i, &a)| Task::new(i as u64, registry.expect_id(&format!("app{a}"))))
            .collect();

        let mut c1 = ClusterState::new(n_machines, 2, chars.clone());
        let mut q1: VecDeque<Task> = tasks.clone().into();
        let mibs = Mibs::new(tasks.len()).schedule(&mut q1, &mut c1, &scoring);

        let mut c2 = ClusterState::new(n_machines, 2, chars);
        let mut q2: VecDeque<Task> = tasks.into();
        let mix = Mix::new(q2.len()).schedule(&mut q2, &mut c2, &scoring);

        let total = |v: &[tracon::core::Assignment]| -> f64 {
            v.iter().map(|a| a.predicted_score).sum()
        };
        prop_assert!(mix.len() >= mibs.len());
        if mix.len() == mibs.len() {
            prop_assert!(total(&mix) <= total(&mibs) + 1e-6);
        }
    }
}
