//! End-to-end integration tests over the full TRACON pipeline: the
//! virtualized testbed produces measurements, the models train on them,
//! the predictor scores placements, the schedulers act on the scores, and
//! the data-center simulation replays the measured interference.
//!
//! All tests share one (reduced) testbed build.

use std::sync::OnceLock;
use tracon::core::{ModelKind, Objective};
use tracon::dcsim::arrival::{poisson_trace, static_batch, WorkloadMix};
use tracon::dcsim::experiments::predictor_with_model;
use tracon::dcsim::{
    io_boost, oracle_predictor, speedup, SchedulerKind, Simulation, Testbed, TestbedConfig,
};
use tracon::vmsim::Benchmark;

fn testbed() -> &'static Testbed {
    static TB: OnceLock<Testbed> = OnceLock::new();
    TB.get_or_init(|| Testbed::build(&TestbedConfig::small()))
}

#[test]
fn testbed_covers_all_benchmarks() {
    let tb = testbed();
    assert_eq!(tb.perf.n_apps(), 8);
    for b in Benchmark::ALL {
        assert!(tb.predictor.knows(b.name()));
        let i = tb.perf.names.iter().position(|n| n == b.name()).unwrap();
        assert!(tb.perf.solo_runtime(i) > 0.0);
        assert!(tb.perf.solo_iops(i) > 0.0);
    }
}

#[test]
fn interference_matrix_has_scheduling_room() {
    // The scheduler can only help if pairings differ: the worst pair must
    // be far costlier than the best pair for the I/O-heavy applications.
    let tb = testbed();
    let video = tb.perf.names.iter().position(|n| n == "video").unwrap();
    let worst = (0..8)
        .map(|b| tb.perf.slowdown(video, b))
        .fold(0.0, f64::max);
    let best = (0..8)
        .map(|b| tb.perf.slowdown(video, b))
        .fold(f64::INFINITY, f64::min);
    assert!(
        worst / best > 2.0,
        "matrix too flat: worst {worst} best {best}"
    );
}

#[test]
fn predictor_ranks_extreme_neighbours_correctly() {
    // The model must know that an I/O-heavy neighbour is worse than an
    // idle-ish one — the minimum the scheduler needs.
    let tb = testbed();
    for target in ["video", "dedup", "blastn"] {
        let light = tb.predictor.predict_pair_runtime(target, "email");
        let heavy = tb.predictor.predict_pair_runtime(target, "blastn");
        assert!(
            heavy > light * 1.3,
            "{target}: heavy neighbour {heavy} vs light {light}"
        );
    }
}

#[test]
fn mibs_improves_on_fifo_across_batches() {
    let tb = testbed();
    let mut speedups = Vec::new();
    let mut boosts = Vec::new();
    for seed in 0..10u64 {
        let trace = static_batch(32, WorkloadMix::Uniform, 1000 + seed);
        let fifo = Simulation::new(tb, 16, SchedulerKind::Fifo).run(&trace, None);
        let mibs = Simulation::new(tb, 16, SchedulerKind::Mibs(32)).run(&trace, None);
        assert_eq!(mibs.completed, 32, "all tasks must complete");
        speedups.push(speedup(&fifo, &mibs));
        boosts.push(io_boost(&fifo, &mibs));
    }
    let mean_speedup = tracon::stats::mean(&speedups);
    let mean_boost = tracon::stats::mean(&boosts);
    assert!(
        mean_speedup > 1.02,
        "mean speedup {mean_speedup} ({speedups:?})"
    );
    assert!(mean_boost > 1.0, "mean IOBoost {mean_boost}");
}

#[test]
fn oracle_predictor_drives_scheduler_sanely() {
    let tb = testbed();
    let oracle = oracle_predictor(tb);
    let mut speedups = Vec::new();
    for seed in 0..6u64 {
        let trace = static_batch(32, WorkloadMix::Uniform, 2000 + seed);
        let fifo = Simulation::new(tb, 16, SchedulerKind::Fifo).run(&trace, None);
        let mibs = Simulation::new(tb, 16, SchedulerKind::Mibs(32))
            .with_predictor(&oracle)
            .run(&trace, None);
        speedups.push(speedup(&fifo, &mibs));
    }
    let mean = tracon::stats::mean(&speedups);
    assert!(mean > 1.0, "oracle-driven MIBS mean speedup {mean}");
}

#[test]
fn wmm_and_lm_predictors_also_schedule() {
    // Fig 4's comparison needs all three model families to drive the
    // scheduler without blowing up.
    let tb = testbed();
    for kind in [ModelKind::Wmm, ModelKind::Linear] {
        let predictor = predictor_with_model(tb, kind);
        let trace = static_batch(16, WorkloadMix::Uniform, 3000);
        let r = Simulation::new(tb, 8, SchedulerKind::Mibs(16))
            .with_predictor(&predictor)
            .run(&trace, None);
        assert_eq!(
            r.completed,
            16,
            "{} predictor broke the simulation",
            kind.name()
        );
        assert!(r.total_runtime.is_finite() && r.total_runtime > 0.0);
    }
}

#[test]
fn dynamic_simulation_conserves_tasks() {
    let tb = testbed();
    let horizon = 4.0 * 3600.0;
    let trace = poisson_trace(6.0, horizon / 2.0, WorkloadMix::Medium, 42);
    for kind in [
        SchedulerKind::Fifo,
        SchedulerKind::Mios,
        SchedulerKind::Mibs(4),
        SchedulerKind::Mix(4),
    ] {
        let r = Simulation::new(tb, 16, kind).run(&trace, Some(horizon));
        assert!(r.completed <= r.arrived, "{}: {r:?}", kind.name());
        // Generous horizon and light load: nothing should be left behind.
        assert_eq!(
            r.completed,
            r.arrived,
            "{} left tasks unfinished: {r:?}",
            kind.name()
        );
        assert!(r.total_runtime > 0.0 && r.total_iops > 0.0);
    }
}

#[test]
fn objectives_produce_valid_schedules() {
    let tb = testbed();
    let trace = static_batch(24, WorkloadMix::Heavy, 4000);
    for objective in [Objective::MinRuntime, Objective::MaxIops] {
        let r = Simulation::new(tb, 12, SchedulerKind::Mix(24))
            .with_objective(objective)
            .run(&trace, None);
        assert_eq!(r.completed, 24);
    }
}

#[test]
fn per_task_iops_bounded_by_solo() {
    // A task's average IOPS can never exceed its uncontended rate, so the
    // batch total is bounded by the sum of solo rates.
    let tb = testbed();
    let trace = static_batch(16, WorkloadMix::Heavy, 5000);
    let r = Simulation::new(tb, 8, SchedulerKind::Fifo).run(&trace, None);
    let solo_total: f64 = trace.iter().map(|a| tb.perf.solo_iops(a.app_idx)).sum();
    assert!(
        r.total_iops <= solo_total * 1.05,
        "total IOPS {} exceeds solo bound {solo_total}",
        r.total_iops
    );
}
