//! Reproducibility tests: every stochastic component is seed-driven, so
//! identical seeds must give bit-identical results across the whole
//! stack — the property that makes the experiment outputs in
//! EXPERIMENTS.md regenerable.

use tracon::vmsim::{apps, Engine, HostConfig, Profiler};

#[test]
fn engine_corun_is_deterministic() {
    let engine = Engine::new(HostConfig::testbed());
    let target = apps::Benchmark::Compile.model().time_scaled(0.1);
    let bg = apps::synthetic(0.5, 0.75, 0.25);
    let a = engine.co_run(&target, &bg, 99);
    let b = engine.co_run(&target, &bg, 99);
    assert_eq!(a.runtime[0].to_bits(), b.runtime[0].to_bits());
    assert_eq!(a.iops[0].to_bits(), b.iops[0].to_bits());
    assert_eq!(
        a.observed[0].read_rps.to_bits(),
        b.observed[0].read_rps.to_bits()
    );
}

#[test]
fn different_seeds_differ_for_jittered_apps() {
    let engine = Engine::new(HostConfig::testbed());
    let target = apps::Benchmark::Compile.model().time_scaled(0.1);
    let a = engine.solo_run(&target, 1);
    let b = engine.solo_run(&target, 2);
    assert_ne!(a.runtime[0].to_bits(), b.runtime[0].to_bits());
}

#[test]
fn profiling_is_deterministic() {
    let profiler = Profiler::new(Engine::new(HostConfig::testbed()));
    let target = apps::Benchmark::Email.model().time_scaled(0.1);
    let backgrounds = vec![
        apps::synthetic(0.5, 0.5, 0.0),
        apps::synthetic(0.0, 1.0, 1.0),
    ];
    let a = profiler.profile(&target, &backgrounds, 7);
    let b = profiler.profile(&target, &backgrounds, 7);
    assert_eq!(a.records.len(), b.records.len());
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.runtime.to_bits(), rb.runtime.to_bits());
        assert_eq!(ra.features, rb.features);
    }
}

#[test]
fn model_training_is_deterministic() {
    use tracon::core::{train_model, ModelKind, TrainingData};
    let mut data = TrainingData::default();
    for i in 0..60 {
        let x = i as f64 / 10.0;
        let f = [x, 1.0, 0.5, 0.1, 3.0 - x * 0.3, 0.2, 0.4, 0.05];
        data.push(f, 10.0 + 2.0 * x + 0.5 * x * x);
    }
    for kind in [ModelKind::Wmm, ModelKind::Linear, ModelKind::Nonlinear] {
        let m1 = train_model(kind, &data);
        let m2 = train_model(kind, &data);
        let q = data.features[7];
        assert_eq!(
            m1.predict(&q).to_bits(),
            m2.predict(&q).to_bits(),
            "{} training not deterministic",
            kind.name()
        );
    }
}

#[test]
fn arrival_traces_are_deterministic() {
    use tracon::dcsim::arrival::{poisson_trace, WorkloadMix};
    let a = poisson_trace(30.0, 1200.0, WorkloadMix::Heavy, 5);
    let b = poisson_trace(30.0, 1200.0, WorkloadMix::Heavy, 5);
    assert_eq!(a, b);
}

#[test]
fn dynamic_sweep_is_thread_count_invariant() {
    // The parallel experiment driver fans (mix, lambda) cells out over
    // worker threads; every statistic must be bit-identical to the
    // single-threaded sweep regardless of worker count.
    use tracon::core::par;
    use tracon::dcsim::arrival::WorkloadMix;
    use tracon::dcsim::engine::SchedulerKind;
    use tracon::dcsim::experiments::fig9::dynamic_sweep;
    use tracon::dcsim::{Testbed, TestbedConfig};

    let tb = Testbed::build(&TestbedConfig::small());
    let run = |threads: usize| {
        par::override_threads(Some(threads));
        let points = dynamic_sweep(
            &tb,
            4,
            &[6.0, 12.0],
            &[WorkloadMix::Light, WorkloadMix::Medium],
            &[SchedulerKind::Mibs(4), SchedulerKind::Mix(4)],
            1800.0,
            2,
            17,
        );
        par::override_threads(None);
        points
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.mix, b.mix);
        assert_eq!(a.scheduler, b.scheduler);
        assert_eq!(a.lambda.to_bits(), b.lambda.to_bits());
        assert_eq!(a.machines, b.machines);
        assert_eq!(
            a.normalized_throughput.mean.to_bits(),
            b.normalized_throughput.mean.to_bits()
        );
        assert_eq!(
            a.normalized_throughput.std_dev.to_bits(),
            b.normalized_throughput.std_dev.to_bits()
        );
        assert_eq!(a.completed.to_bits(), b.completed.to_bits());
    }
}
